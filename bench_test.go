// Benchmarks regenerating the paper's evaluation artefacts. Each
// Benchmark<FigN|TableN> drives the same pipeline as the corresponding
// figure or table (cmd/fbfsim reproduces them at full scale) and
// reports the figure's metric via b.ReportMetric, so `go test -bench .`
// prints the series the paper plots: who wins, by what factor, and
// where the curves converge.
package fbf_test

import (
	"fmt"
	"testing"

	"fbf"
)

// benchTrace memoizes one error trace per (code, prime) so every policy
// sees identical workloads, as in the experiments package.
var benchTraces = map[string][]fbf.PartialStripeError{}

func benchTrace(b *testing.B, code *fbf.Code, groups int) []fbf.PartialStripeError {
	b.Helper()
	key := fmt.Sprintf("%s-%d", code, groups)
	if t, ok := benchTraces[key]; ok {
		return t
	}
	t, err := fbf.GenerateTrace(code, fbf.TraceConfig{
		Groups: groups, Stripes: 1 << 13, Seed: 1, Disk: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[key] = t
	return t
}

func runRecovery(b *testing.B, code *fbf.Code, policy string, cacheMB, workers int, skipWrites bool) *fbf.SimResult {
	b.Helper()
	errors := benchTrace(b, code, 64)
	var last *fbf.SimResult
	for i := 0; i < b.N; i++ {
		res, err := fbf.Run(fbf.SimConfig{
			Code:            code,
			Policy:          policy,
			Strategy:        fbf.StrategyLooped,
			Workers:         workers,
			CacheChunks:     cacheMB * 1024 / 32,
			Stripes:         1 << 13,
			SkipSpareWrites: skipWrites,
		}, errors)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

var benchPolicies = []string{"fifo", "lru", "lfu", "arc", "fbf"}

// BenchmarkFig8 regenerates Figure 8's series: hit ratio per policy
// across cache sizes (TIP, p=13; the full grid runs via
// `fbfsim -fig 8`).
func BenchmarkFig8(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	for _, sizeMB := range []int{8, 32, 128, 512} {
		for _, policy := range benchPolicies {
			b.Run(fmt.Sprintf("cache=%dMB/policy=%s", sizeMB, policy), func(b *testing.B) {
				res := runRecovery(b, code, policy, sizeMB, 128, true)
				b.ReportMetric(res.HitRatio(), "hit-ratio")
			})
		}
	}
}

// BenchmarkFig9 regenerates Figure 9's series: disk reads during
// recovery (TIP, p=13).
func BenchmarkFig9(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	for _, sizeMB := range []int{8, 32, 128, 512} {
		for _, policy := range benchPolicies {
			b.Run(fmt.Sprintf("cache=%dMB/policy=%s", sizeMB, policy), func(b *testing.B) {
				res := runRecovery(b, code, policy, sizeMB, 128, true)
				b.ReportMetric(float64(res.DiskReads), "disk-reads")
			})
		}
	}
}

// BenchmarkFig10 regenerates Figure 10's series: average response time
// per chunk request (TIP, p=13).
func BenchmarkFig10(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	for _, sizeMB := range []int{8, 32, 128} {
		for _, policy := range benchPolicies {
			b.Run(fmt.Sprintf("cache=%dMB/policy=%s", sizeMB, policy), func(b *testing.B) {
				res := runRecovery(b, code, policy, sizeMB, 128, false)
				b.ReportMetric(res.AvgResponse().Milliseconds(), "resp-ms")
			})
		}
	}
}

// BenchmarkFig11 regenerates Figure 11's series: total reconstruction
// time (TIP, p=13).
func BenchmarkFig11(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	for _, sizeMB := range []int{8, 32, 128} {
		for _, policy := range benchPolicies {
			b.Run(fmt.Sprintf("cache=%dMB/policy=%s", sizeMB, policy), func(b *testing.B) {
				res := runRecovery(b, code, policy, sizeMB, 128, false)
				b.ReportMetric(res.Makespan.Milliseconds(), "recon-ms")
			})
		}
	}
}

// BenchmarkTable4 measures Table IV directly: ns/op is the temporal
// overhead of generating one recovery scheme plus its priority
// dictionary, per code and prime.
func BenchmarkTable4(b *testing.B) {
	for _, prime := range []int{5, 7, 11, 13} {
		for _, name := range fbf.CodeNames() {
			code := fbf.MustNewCode(name, prime)
			e := fbf.PartialStripeError{Disk: 0, Row: 0, Size: min(prime-1, code.Rows()) / 2}
			if e.Size == 0 {
				e.Size = 1
			}
			b.Run(fmt.Sprintf("p=%d/code=%s", prime, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := fbf.GenerateScheme(code, e, fbf.StrategyLooped); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable5 runs the Table V pipeline end to end at reduced scale:
// the reported metric is FBF's maximum hit-ratio gain over LRU across
// the sweep.
func BenchmarkTable5(b *testing.B) {
	params := fbf.DefaultExperimentParams()
	params.Codes = []string{"tip"}
	params.Primes = []int{13}
	params.CacheSizesMB = []int{8, 32, 128}
	params.Groups = 48
	params.Stripes = 1 << 13
	params.FastIO = true
	var gain float64
	for i := 0; i < b.N; i++ {
		points, err := fbf.Sweep(params)
		if err != nil {
			b.Fatal(err)
		}
		for _, imp := range fbf.Table5(points) {
			if imp.Metric == "hit ratio" && imp.Baseline == "lru" {
				gain = imp.Percent
			}
		}
	}
	b.ReportMetric(gain, "max-lru-gain-%")
}

// BenchmarkAblationScheme quantifies the design choice behind Figure 2:
// unique chunk reads per error group under each chain-selection
// strategy.
func BenchmarkAblationScheme(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	errors := benchTrace(b, code, 64)
	for _, strategy := range []fbf.Strategy{fbf.StrategyTypical, fbf.StrategyLooped, fbf.StrategyGreedy} {
		b.Run("strategy="+strategy.String(), func(b *testing.B) {
			var unique int
			for i := 0; i < b.N; i++ {
				unique = 0
				for _, e := range errors {
					s, err := fbf.GenerateScheme(code, e, strategy)
					if err != nil {
						b.Fatal(err)
					}
					unique += s.UniqueFetches()
				}
			}
			b.ReportMetric(float64(unique)/float64(len(errors)), "unique-reads/group")
		})
	}
}

// BenchmarkAblationDiskModel checks that the Figure 10/11 ranking holds
// under the positional disk model, not just the paper's flat 10 ms.
func BenchmarkAblationDiskModel(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	errors := benchTrace(b, code, 64)
	for _, policy := range []string{"lru", "fbf"} {
		b.Run("positional/policy="+policy, func(b *testing.B) {
			var last *fbf.SimResult
			for i := 0; i < b.N; i++ {
				res, err := fbf.Run(fbf.SimConfig{
					Code: code, Policy: policy, Strategy: fbf.StrategyLooped,
					Workers: 128, CacheChunks: 32 * 1024 / 32, Stripes: 1 << 13,
					ModelFor: func(i int) fbf.DiskModel {
						return fbf.NewPositional((1<<13)*int64(code.Rows()), int64(i))
					},
				}, errors)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Makespan.Milliseconds(), "recon-ms")
		})
	}
}

// BenchmarkAblationGreedy compares reconstruction with the greedy
// chain-selection extension against the paper's looping heuristic.
func BenchmarkAblationGreedy(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	errors := benchTrace(b, code, 64)
	for _, strategy := range []fbf.Strategy{fbf.StrategyLooped, fbf.StrategyGreedy} {
		b.Run("strategy="+strategy.String(), func(b *testing.B) {
			var last *fbf.SimResult
			for i := 0; i < b.N; i++ {
				res, err := fbf.Run(fbf.SimConfig{
					Code: code, Policy: "fbf", Strategy: strategy,
					Workers: 128, CacheChunks: 32 * 1024 / 32, Stripes: 1 << 13,
					SkipSpareWrites: true,
				}, errors)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.DiskReads), "disk-reads")
		})
	}
}

// BenchmarkEncode measures stripe encoding throughput per code.
func BenchmarkEncode(b *testing.B) {
	for _, name := range fbf.CodeNames() {
		code := fbf.MustNewCode(name, 13)
		stripe := code.NewStripe(32 * 1024)
		b.Run("code="+name, func(b *testing.B) {
			b.SetBytes(int64(len(stripe)) * 32 * 1024)
			for i := 0; i < b.N; i++ {
				code.Encode(stripe)
			}
		})
	}
}

// BenchmarkCachePolicies measures raw request throughput per policy on
// a looped-scheme request stream.
func BenchmarkCachePolicies(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	var requests []fbf.ChunkID
	var prios map[fbf.ChunkID]int
	for stripe := 0; stripe < 32; stripe++ {
		e := fbf.PartialStripeError{Stripe: stripe, Disk: stripe % code.Disks(), Row: 0, Size: 6}
		s, err := fbf.GenerateScheme(code, e, fbf.StrategyLooped)
		if err != nil {
			b.Fatal(err)
		}
		requests = append(requests, s.RequestIDs()...)
		if prios == nil {
			prios = s.PriorityIDs()
		}
	}
	for _, name := range fbf.PolicyNames() {
		b.Run("policy="+name, func(b *testing.B) {
			policy, err := fbf.NewPolicy(name, 256)
			if err != nil {
				b.Fatal(err)
			}
			if pa, ok := policy.(interface {
				SetPriorities(map[fbf.ChunkID]int)
			}); ok {
				pa.SetPriorities(prios)
			}
			if fa, ok := policy.(interface{ SetFuture([]fbf.ChunkID) }); ok {
				fa.SetFuture(requests)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				policy.Request(requests[i%len(requests)])
			}
		})
	}
}

// BenchmarkAblationMode compares the two parallel reconstruction
// organizations (Section III-B of the paper): stripe-oriented (SOR,
// partitioned caches) versus disk-oriented (DOR, one shared cache).
func BenchmarkAblationMode(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	errors := benchTrace(b, code, 64)
	for _, mode := range []fbf.Mode{fbf.ModeSOR, fbf.ModeDOR} {
		for _, policy := range []string{"lru", "fbf"} {
			b.Run(fmt.Sprintf("mode=%s/policy=%s", mode, policy), func(b *testing.B) {
				var last *fbf.SimResult
				for i := 0; i < b.N; i++ {
					res, err := fbf.Run(fbf.SimConfig{
						Code: code, Policy: policy, Strategy: fbf.StrategyLooped,
						Mode: mode, Workers: 128, CacheChunks: 64 * 1024 / 32, Stripes: 1 << 13,
					}, errors)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.Makespan.Milliseconds(), "recon-ms")
				b.ReportMetric(last.HitRatio(), "hit-ratio")
			})
		}
	}
}

// BenchmarkOnlineRecovery measures reconstruction under foreground
// application load (the paper's closing "online recovery" claim).
func BenchmarkOnlineRecovery(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	errors := benchTrace(b, code, 64)
	for _, policy := range []string{"lru", "fbf"} {
		b.Run("policy="+policy, func(b *testing.B) {
			var last *fbf.SimResult
			for i := 0; i < b.N; i++ {
				res, err := fbf.Run(fbf.SimConfig{
					Code: code, Policy: policy, Strategy: fbf.StrategyLooped,
					Workers: 128, CacheChunks: 64 * 1024 / 32, Stripes: 1 << 13,
					App: &fbf.AppWorkload{Requests: 512, Seed: 1, ErrorLocality: 0.5},
				}, errors)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Makespan.Milliseconds(), "recon-ms")
			b.ReportMetric(last.AppAvgResponse().Milliseconds(), "app-resp-ms")
		})
	}
}

// BenchmarkLRCBoundary regenerates the footnote-3 boundary result: FBF
// applied to LRC's local/global chains runs correctly but single-disk
// partial errors share no chunks, so the hit ratio is zero for every
// policy (compare BenchmarkFig8).
func BenchmarkLRCBoundary(b *testing.B) {
	code, err := fbf.NewLRC(12, 2, 2, 12)
	if err != nil {
		b.Fatal(err)
	}
	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{Groups: 64, Stripes: 1 << 13, Seed: 1, Disk: -1})
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []string{"lru", "fbf"} {
		b.Run("policy="+policy, func(b *testing.B) {
			var last *fbf.SimResult
			for i := 0; i < b.N; i++ {
				res, err := fbf.Run(fbf.SimConfig{
					Code: code, Policy: policy, Strategy: fbf.StrategyLooped,
					Workers: 128, CacheChunks: 64 * 1024 / 32, Stripes: 1 << 13,
					SkipSpareWrites: true,
				}, errors)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.HitRatio(), "hit-ratio")
			b.ReportMetric(float64(last.DiskReads), "disk-reads")
		})
	}
}

// BenchmarkClusteredErrors reruns the Figure-8 comparison under the
// spatially clustered error model of Section II-C's citations.
func BenchmarkClusteredErrors(b *testing.B) {
	code := fbf.MustNewCode("tip", 13)
	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{
		Groups: 64, Stripes: 1 << 13, Seed: 1, Disk: -1, Clustered: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range benchPolicies {
		b.Run("policy="+policy, func(b *testing.B) {
			var last *fbf.SimResult
			for i := 0; i < b.N; i++ {
				res, err := fbf.Run(fbf.SimConfig{
					Code: code, Policy: policy, Strategy: fbf.StrategyLooped,
					Workers: 128, CacheChunks: 32 * 1024 / 32, Stripes: 1 << 13,
					SkipSpareWrites: true,
				}, errors)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.HitRatio(), "hit-ratio")
		})
	}
}
