package fbf_test

import (
	"fmt"
	"testing"

	"fbf"
)

// TestDeterministicRegression pins exact end-to-end metrics for a fixed
// configuration and seed. The whole stack — trace generation, scheme
// selection, cache behaviour, discrete-event timing — is deterministic,
// so any change to these numbers means an intentional behaviour change
// (update the table) or a regression (fix it).
func TestDeterministicRegression(t *testing.T) {
	type want struct {
		hits, misses uint64
		diskReads    uint64
		makespanMs   string
	}
	cases := []struct {
		code   string
		p      int
		policy string
		want   want
	}{
		{"tip", 7, "fbf", want{}},
		{"tip", 7, "lru", want{}},
		{"star", 5, "fbf", want{}},
	}
	// First pass records, second pass verifies run-to-run determinism;
	// the pinned values below guard cross-change determinism.
	pinned := map[string]string{
		"tip/7/fbf":  "hits=140 misses=855 reads=855 makespan=1411.620ms",
		"tip/7/lru":  "hits=21 misses=974 reads=974 makespan=1603.000ms",
		"star/5/fbf": "hits=75 misses=611 reads=611 makespan=1303.600ms",
	}
	for _, c := range cases {
		key := fmt.Sprintf("%s/%d/%s", c.code, c.p, c.policy)
		t.Run(key, func(t *testing.T) {
			code, err := fbf.NewCode(c.code, c.p)
			if err != nil {
				t.Fatal(err)
			}
			errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{
				Groups: 48, Stripes: 1024, Seed: 7, Disk: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			run := func() string {
				res, err := fbf.Run(fbf.SimConfig{
					Code: code, Policy: c.policy, Strategy: fbf.StrategyLooped,
					Workers: 16, CacheChunks: 64, Stripes: 1024,
				}, errors)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("hits=%d misses=%d reads=%d makespan=%v",
					res.Cache.Hits, res.Cache.Misses, res.DiskReads, res.Makespan)
			}
			first, second := run(), run()
			if first != second {
				t.Fatalf("non-deterministic:\n  %s\n  %s", first, second)
			}
			if wantStr, ok := pinned[key]; ok && first != wantStr {
				t.Errorf("regression:\n  got  %s\n  want %s", first, wantStr)
			}
		})
	}
}
