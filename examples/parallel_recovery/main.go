// Parallel recovery: demonstrates the paper's SOR-style parallel
// reconstruction — N workers with partitioned caches repairing stripes
// concurrently — and how FBF's advantage persists as parallelism and
// the disk model change.
package main

import (
	"fmt"
	"log"

	"fbf"
)

func main() {
	code, err := fbf.NewCode("star", 11)
	if err != nil {
		log.Fatal(err)
	}
	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{
		Groups:  240,
		Stripes: 8192,
		Seed:    7,
		Disk:    -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructing %d partial stripe errors on %s (%d disks)\n\n", len(errors), code, code.Disks())

	// Scaling: more workers finish sooner, until the disks saturate.
	fmt.Println("SOR scaling (fbf, 32 MB cache, fixed 10ms disks):")
	fmt.Println("workers  reconstruction  avg-response")
	for _, workers := range []int{1, 4, 16, 64, 128} {
		res, err := fbf.Run(fbf.SimConfig{
			Code:        code,
			Policy:      "fbf",
			Strategy:    fbf.StrategyLooped,
			Workers:     workers,
			CacheChunks: 32 * 1024 / 32,
			Stripes:     8192,
		}, errors)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %14v  %v\n", workers, res.Makespan, res.AvgResponse())
	}

	// The same comparison under the positional (seek + rotation +
	// transfer) disk model instead of the paper's flat 10 ms.
	fmt.Println("\npolicy comparison under the positional disk model (128 workers):")
	fmt.Println("policy  hit-ratio  reconstruction")
	for _, policy := range []string{"lru", "arc", "fbf"} {
		res, err := fbf.Run(fbf.SimConfig{
			Code:        code,
			Policy:      policy,
			Strategy:    fbf.StrategyLooped,
			Workers:     128,
			CacheChunks: 32 * 1024 / 32,
			Stripes:     8192,
			ModelFor: func(i int) fbf.DiskModel {
				return fbf.NewPositional(8192*int64(code.Rows()), int64(i))
			},
		}, errors)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  %9.4f  %v\n", policy, res.HitRatio(), res.Makespan)
	}
	fmt.Println("\nthe ranking is the same as under the paper's fixed-latency model:")
	fmt.Println("the cache effect does not depend on the disk mechanics")
}
