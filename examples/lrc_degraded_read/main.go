// LRC degraded reads: exercises the Reed-Solomon-based Local
// Reconstruction Code (the paper's footnote 3) — encode, verify, repair
// via local versus global parity chains, and replay a partial-stripe
// recovery through the engine with byte verification. It also shows the
// boundary result: LRC's row-local chains share no chunks under
// single-disk partial errors, so FBF behaves like LRU there.
package main

import (
	"fmt"
	"log"

	"fbf"
)

func main() {
	// Azure's production configuration: 12 data + 2 local + 2 global.
	code, err := fbf.NewLRC(12, 2, 2, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d disks, %d rows per stripe\n\n", code, code.Disks(), code.Rows())

	// Degraded read cost: repairing one lost data chunk through its
	// local chain reads k/l chunks; through a global chain, k chunks.
	e := fbf.PartialStripeError{Disk: 3, Row: 0, Size: 1}
	local, err := fbf.GenerateScheme(code, e, fbf.StrategyTypical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded read of one chunk via local chain: %d reads\n", local.TotalRequests())
	looped, err := fbf.GenerateScheme(code, fbf.PartialStripeError{Disk: 3, Row: 0, Size: 3}, fbf.StrategyLooped)
	if err != nil {
		log.Fatal(err)
	}
	for _, sel := range looped.Selected {
		fmt.Printf("  chunk %v repaired via %-13s chain: %d reads\n", sel.Lost, sel.Chain.Kind, len(sel.Fetch))
	}
	fmt.Printf("shared chunks across those chains: %d (row codewords are independent)\n\n", looped.SharedChunks())

	// Byte-verified reconstruction through the simulation engine.
	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{Groups: 40, Stripes: 2048, Seed: 11, Disk: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy  hit-ratio  disk-reads  verified-chunks")
	for _, policy := range []string{"lru", "fbf"} {
		res, err := fbf.Run(fbf.SimConfig{
			Code: code, Policy: policy, Strategy: fbf.StrategyLooped,
			Workers: 16, CacheChunks: 128, Stripes: 2048,
			ChunkSize: 4096, VerifyData: true,
		}, errors)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  %9.4f  %10d  %d\n", policy, res.HitRatio(), res.DiskReads, res.VerifiedChunks)
	}
	fmt.Println("\nFBF applies mechanically to LRC's local/global chains, but single-disk")
	fmt.Println("partial errors touch one row per chunk, so no chunk is shared and the")
	fmt.Println("hit ratios match — the boundary result recorded in EXPERIMENTS.md.")
}
