// Cache walkthrough: drives the FBF policy through the exact request
// sequences of the paper's Figures 5–7, printing the three priority
// queues after each step — warming up, demotion on hits, and the
// Queue1-first replacement that protects shared chunks.
package main

import (
	"fmt"
	"strings"

	"fbf"
)

func main() {
	// The priority dictionary of the paper's running example (Figure 3 /
	// Table III shape): one chunk shared by three chains, two by two
	// chains, the rest referenced once.
	pri := map[fbf.ChunkID]int{
		id(1, 1): 3,
		id(4, 1): 2, id(4, 4): 2,
	}
	for _, c := range []fbf.Coord{{Row: 2, Col: 2}, {Row: 5, Col: 5}, {Row: 0, Col: 6}, {Row: 1, Col: 6}, {Row: 1, Col: 7}} {
		pri[fbf.ChunkID{Cell: c}] = 1
	}

	// Figure 5: warming up. Requests arrive in the paper's order.
	fmt.Println("Figure 5 — cache warming up (capacity 5):")
	f := fbf.NewFBF(5)
	f.SetPriorities(pri)
	for _, c := range []fbf.ChunkID{id(1, 1), id(2, 2), id(4, 4), id(5, 5), id(0, 6)} {
		f.Request(c)
		show(f, "after miss on "+c.Cell.String())
	}

	// Figure 6: demotion. Two more hits on C(1,1) walk it from Queue3
	// down to Queue1.
	fmt.Println("\nFigure 6 — demotion on hits:")
	for i := 0; i < 2; i++ {
		hit := f.Request(id(1, 1))
		show(f, fmt.Sprintf("after hit %d on C(1,1) (hit=%v)", i+1, hit))
	}

	// Figure 7: replacement. The cache is full; new priority-1 chunks
	// evict Queue1's LRU and never touch the higher queues, so C(4,4)
	// (priority 2) survives even though it is old.
	fmt.Println("\nFigure 7 — replacement policy (Queue1 drains first):")
	for _, c := range []fbf.ChunkID{id(1, 6), id(1, 7)} {
		f.Request(c)
		show(f, "after miss on "+c.Cell.String())
	}
	if f.Contains(id(4, 4)) {
		fmt.Println("\nC(4,4) is still cached: its two-chain priority protected it,")
		fmt.Println("exactly the behaviour Figure 7 illustrates.")
	}
}

func id(r, c int) fbf.ChunkID {
	return fbf.ChunkID{Cell: fbf.Coord{Row: r, Col: c}}
}

func show(f *fbf.FBFCache, when string) {
	var parts []string
	for q := 3; q >= 1; q-- {
		var names []string
		for _, id := range f.QueueContents(q) {
			names = append(names, id.Cell.String())
		}
		parts = append(parts, fmt.Sprintf("Q%d[%s]", q, strings.Join(names, " ")))
	}
	fmt.Printf("  %-32s %s\n", when+":", strings.Join(parts, "  "))
}
