// Recovery walkthrough: reproduces the narrative of the paper's
// Figures 1–3 and Table III — how a partial stripe error on a TIP-coded
// array is repaired by the typical horizontal-only scheme versus FBF's
// direction-looping scheme, and how the priority dictionary falls out
// of chain sharing.
package main

import (
	"fmt"
	"log"
	"strings"

	"fbf"
)

func main() {
	// Figure 1: the TIP-code layout for a small array (p=5, 6 disks).
	small, err := fbf.NewCode("tip", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 — encoding of %s on %d disks:\n", small, small.Disks())
	layout := small.Layout()
	for r := 0; r < layout.Rows(); r++ {
		var row []string
		for c := 0; c < layout.Cols(); c++ {
			cell := fbf.Coord{Row: r, Col: c}
			if layout.IsParity(cell) {
				row = append(row, "P")
			} else {
				row = append(row, "d")
			}
		}
		fmt.Printf("  row %d: %s\n", r, strings.Join(row, " "))
	}
	fmt.Printf("every data chunk lies on up to three parity chains (one per direction)\n\n")

	// Figure 2: a 4-chunk error on disk 0 under both schemes (p=5).
	err2 := fbf.PartialStripeError{Disk: 0, Row: 0, Size: 4}
	compare(small, err2, "Figure 2 — typical vs FBF chain selection (p=5, 4 lost chunks)")

	// Figure 3 + Table III: a 5-chunk error on disk 0 at p=7.
	big, err := fbf.NewCode("tip", 7)
	if err != nil {
		log.Fatal(err)
	}
	err3 := fbf.PartialStripeError{Disk: 0, Row: 0, Size: 5}
	compare(big, err3, "Figure 3 — FBF recovery scheme (p=7, N=8, 5 lost chunks)")

	scheme, err := fbf.GenerateScheme(big, err3, fbf.StrategyLooped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table III — priority definition of the recovery scheme:")
	groups := scheme.PriorityGroups()
	for pr := 3; pr >= 1; pr-- {
		var names []string
		for _, c := range groups[pr-1] {
			names = append(names, c.String())
		}
		fmt.Printf("  priority %d (%d chunks): %s\n", pr, len(names), strings.Join(names, ", "))
	}
	fmt.Println("\nchunks shared by more chains save more re-reads, so FBF evicts them last")
}

func compare(code *fbf.Code, e fbf.PartialStripeError, title string) {
	fmt.Println(title)
	for _, strategy := range []fbf.Strategy{fbf.StrategyTypical, fbf.StrategyLooped} {
		s, err := fbf.GenerateScheme(code, e, strategy)
		if err != nil {
			log.Fatal(err)
		}
		var kinds []string
		for _, sel := range s.Selected {
			kinds = append(kinds, sel.Chain.Kind.String())
		}
		fmt.Printf("  %-7s: chains [%s]\n", s.Strategy, strings.Join(kinds, ", "))
		fmt.Printf("           %d requests over %d unique chunks (%d shared)\n",
			s.TotalRequests(), s.UniqueFetches(), s.SharedChunks())
	}
	fmt.Println()
}
