// Durability check: exercises the erasure-code layer end to end with
// real chunk contents — encode random stripes under each of the four
// 3DFT codes, erase up to three whole disks, decode, and verify the
// bytes — then repairs a partial stripe error chain by chain the way
// the reconstruction engine does.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fbf"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	const chunkSize = 4096

	for _, name := range fbf.CodeNames() {
		code, err := fbf.NewCode(name, 7)
		if err != nil {
			log.Fatal(err)
		}
		stripe := code.NewStripe(chunkSize)
		for _, cell := range code.Layout().DataCells() {
			rng.Read(stripe[code.CellIndex(cell)])
		}
		code.Encode(stripe)
		if !code.Verify(stripe) {
			log.Fatalf("%v: encode failed verification", code)
		}

		// Erase three random whole disks and recover them.
		cols := rng.Perm(code.Disks())[:3]
		backup := snapshot(code, stripe)
		var lost []fbf.Coord
		for _, col := range cols {
			for r := 0; r < code.Rows(); r++ {
				cell := fbf.Coord{Row: r, Col: col}
				lost = append(lost, cell)
				clear(stripe[code.CellIndex(cell)])
			}
		}
		if err := code.Recover(stripe, lost); err != nil {
			log.Fatalf("%v: triple-disk recovery failed: %v", code, err)
		}
		verify(code, stripe, backup)
		fmt.Printf("%-18s disks %v erased and rebuilt, %d chunks verified\n", code.String(), cols, len(stripe))

		// Repair a partial stripe error through its recovery scheme,
		// chain by chain, as the engine does during simulation.
		e := fbf.PartialStripeError{Disk: cols[0], Row: 1, Size: 4}
		scheme, err := fbf.GenerateScheme(code, e, fbf.StrategyLooped)
		if err != nil {
			log.Fatal(err)
		}
		for _, sel := range scheme.Selected {
			want := append([]byte(nil), stripe[code.CellIndex(sel.Lost)]...)
			acc := make([]byte, chunkSize)
			for _, m := range sel.Fetch {
				for i, b := range stripe[code.CellIndex(m)] {
					acc[i] ^= b
				}
			}
			for i := range want {
				if acc[i] != want[i] {
					log.Fatalf("%v: chain %v rebuilt wrong bytes", code, sel.Chain)
				}
			}
		}
		fmt.Printf("%-18s partial error %v repaired via %d chains (%d unique reads)\n\n",
			"", e, len(scheme.Selected), scheme.UniqueFetches())
	}
	fmt.Println("all four codes encode, survive triple disk loss, and repair partial errors")
}

func snapshot(code *fbf.Code, s fbf.Stripe) [][]byte {
	out := make([][]byte, len(s))
	for i := range s {
		out[i] = append([]byte(nil), s[i]...)
	}
	return out
}

func verify(code *fbf.Code, s fbf.Stripe, want [][]byte) {
	for i := range s {
		for j := range s[i] {
			if s[i][j] != want[i][j] {
				log.Fatalf("%v: cell %v differs after recovery", code, code.CoordOf(i))
			}
		}
	}
}
