// Quickstart: simulate partial stripe recovery on a TIP-coded 3DFT
// array and compare the FBF cache against LRU — the paper's headline
// experiment in ~50 lines.
package main

import (
	"fmt"
	"log"

	"fbf"
)

func main() {
	// A TIP-code array with p=7: 8 disks, 6 chunk rows per stripe.
	code, err := fbf.NewCode("tip", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %s, %d disks, %d rows per stripe\n", code, code.Disks(), code.Rows())

	// A synthetic workload of 200 partial stripe errors: contiguous runs
	// of 1..p-1 bad chunks, uniformly sized, on random disks.
	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{
		Groups:  200,
		Stripes: 8192,
		Seed:    42,
		Disk:    -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d error groups (first: %v)\n\n", len(errors), errors[0])

	// Reconstruct with each cache policy. 16 MB of cache over 128
	// workers is the constrained regime the paper targets: each worker
	// gets 4 chunks of cache, far less than a recovery working set.
	fmt.Println("policy  hit-ratio  disk-reads  avg-response  reconstruction")
	for _, policy := range []string{"fifo", "lru", "lfu", "arc", "fbf"} {
		res, err := fbf.Run(fbf.SimConfig{
			Code:        code,
			Policy:      policy,
			Strategy:    fbf.StrategyLooped,
			Workers:     128,
			CacheChunks: 16 * 1024 / 32, // 16 MB of 32 KB chunks
			Stripes:     8192,
		}, errors)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  %9.4f  %10d  %12v  %v\n",
			policy, res.HitRatio(), res.DiskReads, res.AvgResponse(), res.Makespan)
	}

	fmt.Println("\nFBF holds chunks shared by several parity chains, so with the")
	fmt.Println("same request stream it hits more, reads less, and finishes sooner.")
}
