// Command benchdiff compares two BENCH_rebuild.json files — a checked-in
// baseline and a freshly measured run — and enforces the allocation
// budget of the rebuild hot path: allocs/op and bytes/op may not regress
// by more than a threshold (10% by default). Wall-clock ns/op varies
// with host speed and is reported for context only, never enforced.
//
// Usage:
//
//	go test -run WriteBenchJSON -bench-json current.json .
//	go run ./cmd/benchdiff -baseline BENCH_rebuild.json -current current.json
//
// Exit status 1 means at least one benchmark exceeded the threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

type doc struct {
	Benchmarks []record `json:"benchmarks"`
}

func load(path string) (map[string]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]record, len(d.Benchmarks))
	for _, r := range d.Benchmarks {
		out[r.Name] = r
	}
	return out, nil
}

// pctChange returns the relative change from old to new in percent.
// A zero old value with a non-zero new value counts as +Inf-like 1e9%.
func pctChange(old, new int64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1e9
	}
	return 100 * (float64(new) - float64(old)) / float64(old)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_rebuild.json", "checked-in baseline file")
	currentPath := flag.String("current", "", "freshly measured benchmark file (required)")
	threshold := flag.Float64("threshold", 10, "max allowed allocs/op or bytes/op regression in percent")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Printf("NEW   %-40s allocs=%d bytes=%d ns=%d (no baseline entry)\n",
				name, cur.AllocsPerOp, cur.BytesPerOp, cur.NsPerOp)
			continue
		}
		allocPct := pctChange(base.AllocsPerOp, cur.AllocsPerOp)
		bytePct := pctChange(base.BytesPerOp, cur.BytesPerOp)
		nsPct := pctChange(base.NsPerOp, cur.NsPerOp)
		status := "ok"
		if allocPct > *threshold || bytePct > *threshold {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-5s %-40s allocs %d -> %d (%+.1f%%)  bytes %d -> %d (%+.1f%%)  ns %+.1f%% (advisory)\n",
			status, name, base.AllocsPerOp, cur.AllocsPerOp, allocPct,
			base.BytesPerOp, cur.BytesPerOp, bytePct, nsPct)
	}
	for name := range baseline {
		if _, ok := current[name]; !ok {
			fmt.Printf("GONE  %-40s present in baseline only\n", name)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.0f%% on allocs/op or bytes/op\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within the %.0f%% allocation budget\n", len(names), *threshold)
}
