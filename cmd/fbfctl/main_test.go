package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"fbf/internal/chunk"
	"fbf/internal/codes"
	"fbf/internal/rebuild"
	"fbf/internal/store"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCtl drives the CLI in-process.
func runCtl(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// initStore materializes a small deterministic array and returns its
// directory.
func initStore(t *testing.T, codeName string, stripes int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "array")
	_, errOut, code := runCtl(t, "init", "-store", dir, "-code", codeName, "-p", "5",
		"-stripes", fmt.Sprint(stripes), "-chunk", "128", "-seed", "42")
	if code != exitOK {
		t.Fatalf("init failed (%d): %s", code, errOut)
	}
	return dir
}

// treeHash digests every file (relative path + content) under dir, so
// two calls compare entire store trees byte for byte.
func treeHash(t *testing.T, dir string) string {
	t.Helper()
	h := sha256.New()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s\n%d\n", rel, len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// checkGroundTruth re-materializes every stripe from the init seed and
// byte-compares the store, then re-checks stripe parity with the code's
// Verify oracle — two independent acceptance gates.
func checkGroundTruth(t *testing.T, dir, codeName string, stripes int) {
	t.Helper()
	const chunkSize, seed = 128, 42
	code := codes.MustNew(codeName, 5)
	b, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]chunk.Chunk, code.Layout().Cells())
	stripe := make([]chunk.Chunk, code.Layout().Cells())
	for i := range want {
		want[i] = chunk.New(chunkSize)
		stripe[i] = chunk.New(chunkSize)
	}
	for s := 0; s < stripes; s++ {
		code.MaterializeStripeInto(want, rebuild.StripeSeed(seed, s))
		for idx := range stripe {
			a := rebuild.AddrOf(s, code.CoordOf(idx))
			if _, err := b.ReadChunk(a, stripe[idx]); err != nil {
				t.Fatalf("read %v: %v", a, err)
			}
			if !stripe[idx].Equal(want[idx]) {
				t.Fatalf("chunk %v differs from ground truth", a)
			}
		}
		if !code.Verify(stripe) {
			t.Fatalf("stripe %d fails parity verification", s)
		}
	}
}

// TestEndToEndRecovery is the acceptance drill: materialize an array,
// kill three whole disk directories, prove check-only and dry-run leave
// the tree byte-identical, rebuild, and byte-diff the result against
// recomputed ground truth plus the parity oracle — across two codes and
// both the typical and FBF strategies.
func TestEndToEndRecovery(t *testing.T) {
	const stripes = 3
	for _, codeName := range []string{"star", "tip"} {
		for _, strategy := range []string{"typical", "fbf"} {
			t.Run(codeName+"-"+strategy, func(t *testing.T) {
				kill := []int{0, 2, 4}
				if !codes.MustNew(codeName, 5).CanRecoverColumns(kill...) {
					t.Fatalf("%s cannot recover disks %v; bad test setup", codeName, kill)
				}
				dir := initStore(t, codeName, stripes)
				for _, d := range kill {
					if err := os.RemoveAll(filepath.Join(dir, store.DiskDirName(d))); err != nil {
						t.Fatal(err)
					}
				}

				damaged := treeHash(t, dir)
				if _, _, code := runCtl(t, "status", "-store", dir); code != exitDamaged {
					t.Fatalf("status on damaged store = %d, want %d", code, exitDamaged)
				}
				// Read-only modes must not move a byte.
				if _, _, code := runCtl(t, "rebuild", "-store", dir, "-o", "check-only"); code != exitDamaged {
					t.Fatalf("check-only = %d, want %d", code, exitDamaged)
				}
				if got := treeHash(t, dir); got != damaged {
					t.Fatal("check-only modified the store")
				}
				if _, errOut, code := runCtl(t, "rebuild", "-store", dir, "-o", "dry-run", "-strategy", strategy); code != exitOK {
					t.Fatalf("dry-run failed: %s", errOut)
				}
				if got := treeHash(t, dir); got != damaged {
					t.Fatal("dry-run modified the store")
				}

				out, errOut, code := runCtl(t, "rebuild", "-store", dir, "-strategy", strategy, "-progress")
				if code != exitOK {
					t.Fatalf("rebuild failed (%d): %s", code, errOut)
				}
				wantChunks := len(kill) * 4 * stripes // rows=4 at p=5
				if !strings.Contains(out, fmt.Sprintf("rebuilt : %d chunks", wantChunks)) {
					t.Errorf("rebuild output missing chunk count:\n%s", out)
				}
				if !strings.Contains(out, "state : clean") {
					t.Errorf("rebuild did not report a clean store:\n%s", out)
				}
				if !strings.Contains(errOut, "100% complete") {
					t.Errorf("progress never reached 100%%:\n%s", errOut)
				}
				if _, _, code := runCtl(t, "status", "-store", dir); code != exitOK {
					t.Fatalf("status after rebuild = %d, want clean", code)
				}
				checkGroundTruth(t, dir, codeName, stripes)
			})
		}
	}
}

// TestScrubRecoversSilentCorruption flips one payload byte in place —
// invisible to the header-only scan — and expects `rebuild -o scrub -o
// priority=vulnerable` to find and repair it.
func TestScrubRecoversSilentCorruption(t *testing.T) {
	const stripes = 2
	dir := initStore(t, "star", stripes)
	victim := store.Addr{Disk: 3, Stripe: 1, Chunk: 2}
	path := filepath.Join(dir, store.ChunkPath(victim))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[store.HeaderSize+5] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The plain scan misses payload rot entirely.
	if _, _, code := runCtl(t, "status", "-store", dir); code != exitOK {
		t.Fatal("header-only status flagged payload rot")
	}
	if _, _, code := runCtl(t, "status", "-store", dir, "-o", "scrub"); code != exitDamaged {
		t.Fatal("scrub status missed payload rot")
	}
	out, errOut, code := runCtl(t, "rebuild", "-store", dir, "-o", "scrub", "-o", "priority=vulnerable")
	if code != exitOK {
		t.Fatalf("scrub rebuild failed (%d): %s", code, errOut)
	}
	if !strings.Contains(out, "(0 missing, 1 corrupt)") {
		t.Errorf("scan line does not report the corrupt chunk:\n%s", out)
	}
	checkGroundTruth(t, dir, "star", stripes)
}

// golden compares got against testdata/<name>.golden, rewriting with
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutput pins the user-facing text of status and the
// read-only rebuild modes byte for byte. The store is deterministic
// (fixed seed, fixed kills) and the output carries no paths or
// timestamps, so any drift is a real interface change.
func TestGoldenOutput(t *testing.T) {
	const stripes = 4
	dir := initStore(t, "star", stripes)

	out, _, code := runCtl(t, "status", "-store", dir)
	if code != exitOK {
		t.Fatalf("status = %d", code)
	}
	golden(t, "status_clean", out)

	for _, d := range []int{1, 6} {
		if err := os.RemoveAll(filepath.Join(dir, store.DiskDirName(d))); err != nil {
			t.Fatal(err)
		}
	}
	out, _, code = runCtl(t, "status", "-store", dir)
	if code != exitDamaged {
		t.Fatalf("status = %d, want %d", code, exitDamaged)
	}
	golden(t, "status_degraded", out)

	out, _, code = runCtl(t, "rebuild", "-store", dir, "-o", "check-only")
	if code != exitDamaged {
		t.Fatalf("check-only = %d, want %d", code, exitDamaged)
	}
	golden(t, "rebuild_check_only", out)

	out, _, code = runCtl(t, "rebuild", "-store", dir, "-o", "dry-run")
	if code != exitOK {
		t.Fatalf("dry-run = %d", code)
	}
	golden(t, "rebuild_dry_run", out)

	// The executed rebuild is deterministic too: counts, no timings.
	out, _, code = runCtl(t, "rebuild", "-store", dir)
	if code != exitOK {
		t.Fatalf("rebuild = %d", code)
	}
	golden(t, "rebuild_full", out)
}

// TestUsageErrors walks the rejection surface: every bad invocation
// exits 1 with a diagnostic on stderr and never touches stdout.
func TestUsageErrors(t *testing.T) {
	dir := initStore(t, "star", 1)
	cases := []struct {
		name string
		args []string
	}{
		{"no-args", nil},
		{"unknown-command", []string{"destroy", "-store", "x"}},
		{"init-no-store", []string{"init"}},
		{"init-bad-code", []string{"init", "-store", filepath.Join(t.TempDir(), "a"), "-code", "raid9"}},
		{"init-refuses-overwrite", []string{"init", "-store", dir}},
		{"status-no-store", []string{"status"}},
		{"status-missing-store", []string{"status", "-store", filepath.Join(t.TempDir(), "nope")}},
		{"status-unknown-option", []string{"status", "-store", dir, "-o", "chekc-only"}},
		{"rebuild-unknown-option", []string{"rebuild", "-store", dir, "-o", "fast"}},
		{"rebuild-bad-strategy", []string{"rebuild", "-store", dir, "-strategy", "psychic"}},
		{"rebuild-bad-policy", []string{"rebuild", "-store", dir, "-policy", "no-such"}},
		{"rebuild-bad-priority", []string{"rebuild", "-store", dir, "-o", "priority=fastest"}},
		{"rebuild-conflicting-modes", []string{"rebuild", "-store", dir, "-o", "check-only", "-o", "dry-run"}},
		{"rebuild-bad-bool", []string{"rebuild", "-store", dir, "-o", "scrub=maybe"}},
		{"duplicate-option", []string{"rebuild", "-store", dir, "-o", "scrub", "-o", "scrub"}},
		{"rebuild-bad-rate", []string{"rebuild", "-store", dir, "-o", "rate-limit=0"}},
		{"rebuild-resume-check-only", []string{"rebuild", "-store", dir, "-o", "resume", "-o", "check-only"}},
		{"daemon-unknown-option", []string{"daemon", "-store", dir, "-o", "check-only"}},
		{"daemon-bad-retries", []string{"daemon", "-store", dir, "-o", "retries=lots"}},
		{"daemon-bad-rate", []string{"daemon", "-store", dir, "-o", "rate-limit=-3"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, errOut, code := runCtl(t, tc.args...)
			if code != exitErr {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, exitErr, errOut)
			}
			if errOut == "" {
				t.Error("no diagnostic on stderr")
			}
			if out != "" {
				t.Errorf("usage error wrote to stdout: %q", out)
			}
		})
	}
}

// TestHelpExitsZero pins that explicit help requests succeed.
func TestHelpExitsZero(t *testing.T) {
	for _, arg := range []string{"help", "-h", "--help"} {
		if _, errOut, code := runCtl(t, arg); code != exitOK || !strings.Contains(errOut, "usage:") {
			t.Errorf("%s: exit %d, stderr %q", arg, code, errOut)
		}
	}
}

// TestRebuildResumeAfterInterrupt pins the -o resume lifecycle end to
// end: an interrupted journaled rebuild exits 3 with a terminal summary
// and keeps the journal; the rerun resumes, converges byte-exact, and
// removes it.
func TestRebuildResumeAfterInterrupt(t *testing.T) {
	const stripes = 3
	dir := initStore(t, "star", stripes)
	for _, d := range []int{0, 2, 4} {
		if err := os.RemoveAll(filepath.Join(dir, store.DiskDirName(d))); err != nil {
			t.Fatal(err)
		}
	}

	stopped := make(chan struct{})
	close(stopped)
	testStop = stopped
	defer func() { testStop = nil }()
	out, errOut, code := runCtl(t, "rebuild", "-store", dir, "-o", "resume")
	if code != exitInterrupted {
		t.Fatalf("interrupted rebuild = %d, want %d (stderr: %s)", code, exitInterrupted, errOut)
	}
	if !strings.Contains(out, "interrupted :") || !strings.Contains(out, "rerun with -o resume") {
		t.Fatalf("interrupt summary missing:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); err != nil {
		t.Fatalf("journal missing after interrupt: %v", err)
	}

	testStop = nil
	out, errOut, code = runCtl(t, "rebuild", "-store", dir, "-o", "resume")
	if code != exitOK {
		t.Fatalf("resume = %d (stderr: %s)", code, errOut)
	}
	if !strings.Contains(out, "state : clean") {
		t.Fatalf("resume did not report clean:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); !os.IsNotExist(err) {
		t.Fatalf("journal survives completed resume: %v", err)
	}
	checkGroundTruth(t, dir, "star", stripes)
}

// TestRebuildRateLimited pins that a throttled rebuild still converges
// (the limit is set far above the store size, so the test stays fast).
func TestRebuildRateLimited(t *testing.T) {
	const stripes = 2
	dir := initStore(t, "star", stripes)
	if err := os.RemoveAll(filepath.Join(dir, store.DiskDirName(5))); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runCtl(t, "rebuild", "-store", dir, "-o", "rate-limit=100000000")
	if code != exitOK {
		t.Fatalf("rate-limited rebuild = %d: %s", code, errOut)
	}
	checkGroundTruth(t, dir, "star", stripes)
}

// TestDaemonWatchesAndExits pins the daemon happy path: scan one,
// repair, scan two confirms clean, exit at max-scans with the journal
// cleaned up and the store byte-exact.
func TestDaemonWatchesAndExits(t *testing.T) {
	const stripes = 2
	dir := initStore(t, "star", stripes)
	if err := os.RemoveAll(filepath.Join(dir, store.DiskDirName(3))); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := runCtl(t, "daemon", "-store", dir, "-interval", "1ms", "-o", "max-scans=2")
	if code != exitOK {
		t.Fatalf("daemon = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "scans : 2 (1 rebuilds, 0 retries)") {
		t.Fatalf("daemon summary:\n%s", out)
	}
	if !strings.Contains(errOut, "rebuilt") || !strings.Contains(errOut, "clean") {
		t.Fatalf("daemon log:\n%s", errOut)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); !os.IsNotExist(err) {
		t.Fatalf("journal survives daemon completion: %v", err)
	}
	checkGroundTruth(t, dir, "star", stripes)
}

// TestDaemonGracefulSignalExit pins the shutdown path: a pending stop
// request exits 3 with the graceful-shutdown summary.
func TestDaemonGracefulSignalExit(t *testing.T) {
	dir := initStore(t, "star", 1)
	stopped := make(chan struct{})
	close(stopped)
	testStop = stopped
	defer func() { testStop = nil }()
	out, errOut, code := runCtl(t, "daemon", "-store", dir)
	if code != exitInterrupted {
		t.Fatalf("daemon under stop = %d, want %d: %s", code, exitInterrupted, errOut)
	}
	if !strings.Contains(out, "shutdown : graceful") {
		t.Fatalf("daemon shutdown summary:\n%s", out)
	}
}

// httpGet fetches a telemetry endpoint and checks the status code.
func httpGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d\n%s", url, resp.StatusCode, wantStatus, body)
	}
	return string(body)
}

// TestDaemonListenServesEndpoints boots `daemon -listen 127.0.0.1:0`
// against a damaged store, scrapes /metrics, /progress and /healthz
// mid-run through the testListenReady seam, then stops the daemon and
// checks the graceful exit tears the listener down.
func TestDaemonListenServesEndpoints(t *testing.T) {
	const stripes = 2
	dir := initStore(t, "star", stripes)
	if err := os.RemoveAll(filepath.Join(dir, store.DiskDirName(4))); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	testStop = stop
	addrCh := make(chan string, 1)
	testListenReady = func(a string) { addrCh <- a }
	defer func() { testStop = nil; testListenReady = nil }()

	type result struct {
		out, errOut string
		code        int
	}
	resCh := make(chan result, 1)
	go func() {
		var out, errb bytes.Buffer
		code := run([]string{"daemon", "-store", dir, "-interval", "1h", "-listen", "127.0.0.1:0"}, &out, &errb)
		resCh <- result{out.String(), errb.String(), code}
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its telemetry address")
	}

	// Wait for the first pass to repair the killed disk and the daemon
	// to settle into watching; the counters are then stable to assert on.
	var snap struct {
		Phase    string `json:"phase"`
		Scans    int    `json:"scans"`
		Rebuilds int    `json:"rebuilds"`
		Percent  int    `json:"percent"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := httpGet(t, base+"/progress", http.StatusOK)
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("decode /progress: %v\n%s", err, body)
		}
		if snap.Phase == "watching" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reached the watching phase: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
	if snap.Scans != 1 || snap.Rebuilds != 1 || snap.Percent != 100 {
		t.Fatalf("/progress after the first pass = %+v, want 1 scan, 1 rebuild, 100%%", snap)
	}

	metrics := httpGet(t, base+"/metrics", http.StatusOK)
	for _, want := range []string{
		fmt.Sprintf("fbf_rebuild_stripes_done %d\n", stripes),
		"fbf_daemon_scans 1\n",
		"fbf_daemon_rebuilds 1\n",
		`fbf_store_ops{op="read"}`,
		`fbf_store_op_seconds_bucket{op="write",le="+Inf"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if body := httpGet(t, base+"/healthz", http.StatusOK); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz body = %q", body)
	}

	close(stop)
	var r result
	select {
	case r = <-resCh:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after the stop request")
	}
	if r.code != exitInterrupted {
		t.Fatalf("stopped daemon exited %d, want %d\nstdout:\n%s\nstderr:\n%s", r.code, exitInterrupted, r.out, r.errOut)
	}
	if !strings.Contains(r.out, "shutdown : graceful") {
		t.Fatalf("daemon shutdown summary:\n%s", r.out)
	}
	if !strings.Contains(r.errOut, "serving telemetry on") {
		t.Fatalf("daemon never logged its telemetry address:\n%s", r.errOut)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("telemetry server still answering after daemon exit")
	}
	checkGroundTruth(t, dir, "star", stripes)
}

// TestDaemonListenSummaryUnchanged pins the zero-overhead contract at
// the CLI surface: over identical stores, the stdout summary of a
// -listen daemon is byte-identical to the plain daemon's — telemetry
// adds a stderr line and an HTTP server, never different output.
func TestDaemonListenSummaryUnchanged(t *testing.T) {
	runOnce := func(extra ...string) string {
		const stripes = 2
		dir := initStore(t, "star", stripes)
		if err := os.RemoveAll(filepath.Join(dir, store.DiskDirName(3))); err != nil {
			t.Fatal(err)
		}
		args := append([]string{"daemon", "-store", dir, "-interval", "1ms", "-o", "max-scans=2"}, extra...)
		out, errOut, code := runCtl(t, args...)
		if code != exitOK {
			t.Fatalf("daemon %v = %d: %s", extra, code, errOut)
		}
		checkGroundTruth(t, dir, "star", stripes)
		return out
	}
	plain := runOnce()
	listened := runOnce("-listen", "127.0.0.1:0")
	if plain != listened {
		t.Fatalf("-listen changed the stdout summary:\n--- plain ---\n%s\n--- listen ---\n%s", plain, listened)
	}
}
