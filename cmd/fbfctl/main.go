// Command fbfctl manages on-disk fbf chunk stores: it materializes
// arrays, reports their health, and drives the storage-engine rebuild —
// the same scheme/cache/escalation machinery the simulator replays,
// applied to real bytes behind internal/store.
//
// Usage:
//
//	fbfctl init    -store DIR -code NAME [-p N] [-stripes N] [-chunk BYTES] [-seed N]
//	fbfctl status  -store DIR [-o scrub]
//	fbfctl rebuild -store DIR [-policy NAME] [-strategy NAME] [-cache N] [-progress]
//	               [-o check-only] [-o dry-run] [-o scrub] [-o no-verify]
//	               [-o priority=sequential|vulnerable] [-o resume]
//	               [-o rate-limit=BYTES/S]
//	fbfctl daemon  -store DIR [-interval DUR] [-listen ADDR] [-policy NAME] [-strategy NAME]
//	               [-cache N] [-o scrub] [-o no-verify] [-o priority=...]
//	               [-o rate-limit=BYTES/S] [-o retries=N] [-o max-scans=N]
//
// Operator options follow the rclone `-o key[=value]` convention.
// `rebuild -o resume` journals progress to <store>/rebuild.journal and
// resumes from it after a crash or interrupt; `daemon` watches the
// store, journaling every repair. Both shut down gracefully on
// SIGINT/SIGTERM: the chunk in flight is finished, the journal synced,
// and a summary printed.
//
// `daemon -listen :9920` serves live operational telemetry over HTTP:
// /metrics (Prometheus text exposition of store I/O, rebuild and daemon
// counters), /healthz (200 while running, 503 once shutdown begins) and
// /progress (JSON of the watch phase and the pass in flight). Without
// -listen no listener is opened and no telemetry is collected.
//
// Exit status: 0 success (and store clean), 1 error, 2 damage present
// (status, rebuild -o check-only) or data loss (rebuild, daemon),
// 3 interrupted by a shutdown signal (journal kept for resume).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"fbf/internal/cache"
	"fbf/internal/cli"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/rebuild"
	"fbf/internal/store"
	"fbf/internal/telemetry"
)

const (
	exitOK          = 0
	exitErr         = 1
	exitDamaged     = 2
	exitInterrupted = 3
)

// journalName is the rebuild journal's filename inside the store root.
const journalName = "rebuild.journal"

// testStop, when non-nil, feeds notifyStop alongside real signals — the
// seam that lets tests exercise interrupted runs deterministically.
var testStop <-chan struct{}

// testListenReady, when non-nil, receives the telemetry server's bound
// address once it is serving — the seam daemon-endpoint tests use to
// scrape a `-listen 127.0.0.1:0` daemon mid-run.
var testListenReady func(addr string)

// notifyStop returns a channel closed on SIGINT/SIGTERM (the graceful
// shutdown request) and a cleanup func restoring default handling.
func notifyStop() (<-chan struct{}, func()) {
	if testStop != nil {
		return testStop, func() {}
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		select {
		case <-sigs:
			close(stop)
		case <-done:
		}
	}()
	return stop, func() { signal.Stop(sigs); close(done) }
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func usage(stderr io.Writer) int {
	fmt.Fprintf(stderr, `usage:
  fbfctl init    -store DIR -code NAME [-p N] [-stripes N] [-chunk BYTES] [-seed N]
  fbfctl status  -store DIR [-o scrub]
  fbfctl rebuild -store DIR [-policy NAME] [-strategy NAME] [-cache N] [-progress]
                 [-o check-only] [-o dry-run] [-o scrub] [-o no-verify]
                 [-o priority=sequential|vulnerable] [-o resume] [-o rate-limit=BYTES/S]
  fbfctl daemon  -store DIR [-interval DUR] [-listen ADDR] [-policy NAME] [-strategy NAME]
                 [-cache N] [-o scrub] [-o no-verify] [-o priority=...]
                 [-o rate-limit=BYTES/S] [-o retries=N] [-o max-scans=N]

codes: %v  policies: %v
exit status: 0 ok, 1 error, 2 damage/data loss, 3 interrupted (journal kept)
`, codes.Names(), cache.Names())
	return exitErr
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "init":
		return runInit(args[1:], stdout, stderr)
	case "status":
		return runStatus(args[1:], stdout, stderr)
	case "rebuild":
		return runRebuild(args[1:], stdout, stderr)
	case "daemon":
		return runDaemon(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stderr)
		return exitOK
	}
	fmt.Fprintf(stderr, "fbfctl: unknown command %q\n", args[0])
	return usage(stderr)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "fbfctl: %v\n", err)
	return exitErr
}

func runInit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fbfctl init", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "store directory (created if absent)")
	codeName := fs.String("code", "star", "erasure code name")
	p := fs.Int("p", 5, "code prime")
	stripes := fs.Int("stripes", 16, "stripes to materialize")
	chunkSize := fs.Int("chunk", 4096, "chunk size in bytes")
	seed := fs.Int64("seed", 1, "data seed")
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	if *storeDir == "" {
		return fail(stderr, fmt.Errorf("bad -store: empty store directory"))
	}
	code, err := codes.New(*codeName, *p)
	if err != nil {
		return fail(stderr, err)
	}
	if _, err := store.ReadManifest(*storeDir); err == nil {
		return fail(stderr, fmt.Errorf("%s already holds an fbf store (refusing to overwrite)", *storeDir))
	}
	m := store.ArrayManifest{
		Code: *codeName, P: *p,
		Disks: code.Disks(), Rows: code.Rows(),
		Stripes: *stripes, ChunkSize: *chunkSize,
	}
	b, err := store.OpenDir(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	if err := store.WriteManifest(*storeDir, m); err != nil {
		return fail(stderr, err)
	}
	if err := rebuild.InitStore(b, m, *seed); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "initialized %s (p=%d) array: %d chunks across %d disks\n",
		m.Code, m.P, m.Chunks(), m.Disks)
	printManifest(stdout, m)
	return exitOK
}

// openStore loads the manifest and dirstore backend of one store root.
func openStore(dir string) (store.ArrayManifest, *store.Dir, error) {
	if dir == "" {
		return store.ArrayManifest{}, nil, fmt.Errorf("bad -store: empty store directory")
	}
	m, err := store.ReadManifest(dir)
	if err != nil {
		return store.ArrayManifest{}, nil, err
	}
	b, err := store.OpenDir(dir)
	if err != nil {
		return store.ArrayManifest{}, nil, err
	}
	return m, b, nil
}

func printManifest(w io.Writer, m store.ArrayManifest) {
	fmt.Fprintf(w, "        code : %s (p=%d)\n", m.Code, m.P)
	fmt.Fprintf(w, "       disks : %d\n", m.Disks)
	fmt.Fprintf(w, "        rows : %d\n", m.Rows)
	fmt.Fprintf(w, "     stripes : %d\n", m.Stripes)
	fmt.Fprintf(w, "  chunk size : %d B\n", m.ChunkSize)
}

// printDamage renders a scan in mdadm --detail style. It returns
// whether the store is damaged.
func printDamage(w io.Writer, m store.ArrayManifest, rep *rebuild.DamageReport) bool {
	if rep.Clean() {
		fmt.Fprintf(w, "       state : clean\n")
	} else {
		fmt.Fprintf(w, "       state : degraded\n")
		fmt.Fprintf(w, "     missing : %d chunks\n", rep.MissingChunks)
		fmt.Fprintf(w, "     corrupt : %d chunks\n", rep.CorruptChunks)
		if len(rep.FailedDisks) > 0 {
			names := ""
			for i, d := range rep.FailedDisks {
				if i > 0 {
					names += ", "
				}
				names += store.DiskDirName(d)
			}
			fmt.Fprintf(w, "failed disks : %d (%s)\n", len(rep.FailedDisks), names)
		}
		fmt.Fprintf(w, "    degraded : %d of %d stripes\n", len(rep.Stripes), m.Stripes)
	}
	if len(rep.ExtraChunks) > 0 {
		fmt.Fprintf(w, "       extra : %d chunks outside the array geometry\n", len(rep.ExtraChunks))
	}
	return !rep.Clean()
}

func runStatus(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fbfctl status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "store directory")
	var opts cli.Options
	fs.Var(&opts, "o", "operator option: scrub")
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	if unknown := opts.Unknown("scrub"); len(unknown) > 0 {
		return fail(stderr, fmt.Errorf("unknown -o options %v (status knows: scrub)", unknown))
	}
	scrub, err := opts.Bool("scrub")
	if err != nil {
		return fail(stderr, err)
	}
	m, b, err := openStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	rep, err := rebuild.ScanStore(b, m, scrub)
	if err != nil {
		return fail(stderr, err)
	}
	printManifest(stdout, m)
	if printDamage(stdout, m, rep) {
		return exitDamaged
	}
	return exitOK
}

// throttled wraps the backend in a token-bucket rate limit when the
// rate-limit option is given (bytes of chunk payload I/O per second).
// The throttle handle is returned alongside so telemetry can expose the
// bucket state; it is nil when no limit was asked for.
func throttled(b store.Backend, opts *cli.Options) (store.Backend, *store.Throttle, error) {
	rate, err := opts.Int64("rate-limit", 0)
	if err != nil {
		return nil, nil, err
	}
	if !opts.Has("rate-limit") {
		return b, nil, nil
	}
	t, err := store.NewThrottle(b, rate)
	if err != nil {
		return nil, nil, err
	}
	return t, t, nil
}

func runRebuild(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fbfctl rebuild", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "store directory")
	policy := fs.String("policy", "fbf", "cache policy for surviving chunks")
	strategy := fs.String("strategy", "looped", "chain-selection strategy")
	cacheChunks := fs.Int("cache", 64, "cache capacity in chunks (negative disables)")
	progress := fs.Bool("progress", false, "report per-stripe progress on stderr")
	var opts cli.Options
	fs.Var(&opts, "o", "operator option: check-only, dry-run, scrub, no-verify, priority=..., resume, rate-limit=...")
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	if unknown := opts.Unknown("check-only", "dry-run", "scrub", "no-verify", "priority", "resume", "rate-limit"); len(unknown) > 0 {
		return fail(stderr, fmt.Errorf("unknown -o options %v (rebuild knows: check-only, dry-run, scrub, no-verify, priority, resume, rate-limit)", unknown))
	}
	strat, err := core.ParseStrategy(*strategy)
	if err != nil {
		return fail(stderr, err)
	}
	m, b, err := openStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	backend, _, err := throttled(store.Backend(b), &opts)
	if err != nil {
		return fail(stderr, err)
	}
	cfg := rebuild.ServiceConfig{
		Backend: backend, Manifest: m,
		Policy: *policy, Strategy: strat, CacheChunks: *cacheChunks,
		Priority: opts.Value("priority", rebuild.PrioritySequential),
	}
	var resume bool
	for _, bind := range []struct {
		key string
		dst *bool
	}{
		{"check-only", &cfg.CheckOnly}, {"dry-run", &cfg.DryRun},
		{"scrub", &cfg.Scrub}, {"no-verify", &cfg.NoVerify},
		{"resume", &resume},
	} {
		v, err := opts.Bool(bind.key)
		if err != nil {
			return fail(stderr, err)
		}
		*bind.dst = v
	}
	if resume {
		// Journaled mode: progress survives crashes and interrupts, and
		// a rerun with -o resume picks up where this one stopped.
		cfg.JournalPath = filepath.Join(*storeDir, journalName)
	}
	if !cfg.CheckOnly && !cfg.DryRun {
		// SIGINT/SIGTERM request a graceful stop: finish the chunk in
		// flight, sync the journal (if any), summarize, exit 3.
		stop, cancel := notifyStop()
		defer cancel()
		cfg.Stop = stop
	}
	if *progress {
		cfg.Progress = func(p rebuild.Progress) {
			fmt.Fprintf(stderr, " rebuild status : %3d%% complete (stripe %d, %d/%d stripes, %d chunks)\n",
				p.Percent(), p.Stripe, p.StripesDone, p.StripesTotal, p.ChunksRebuilt)
		}
	}

	res, err := rebuild.RunService(cfg)
	if err != nil {
		return fail(stderr, err)
	}
	rep := res.Report
	fmt.Fprintf(stdout, "        scan : %d lost chunks (%d missing, %d corrupt) in %d of %d stripes\n",
		rep.LostChunks(), rep.MissingChunks, rep.CorruptChunks, len(rep.Stripes), m.Stripes)
	switch {
	case cfg.CheckOnly:
		fmt.Fprintf(stdout, "  check-only : no repair attempted\n")
		if !rep.Clean() {
			return exitDamaged
		}
	case res.Interrupted:
		fmt.Fprintf(stdout, " interrupted : %d of %d damaged stripes repaired (%d chunks rebuilt)\n",
			res.StripesRepaired, len(rep.Stripes), res.ChunksRebuilt)
		if res.JournalOffset > 0 {
			fmt.Fprintf(stdout, "     journal : synced at offset %d; rerun with -o resume to continue\n", res.JournalOffset)
		}
		return exitInterrupted
	case rep.Clean():
		fmt.Fprintf(stdout, "       state : clean\n")
	case cfg.DryRun:
		fmt.Fprintf(stdout, "        plan : strategy=%s policy=%s cache=%d priority=%s\n",
			strat, cfg.Policy, cfg.CacheChunks, cfg.Priority)
		fmt.Fprintf(stdout, "     dry-run : would rebuild %d chunks reading %d distinct chunks\n",
			res.PlannedChunks, res.PlannedReads)
	default:
		fmt.Fprintf(stdout, "        plan : strategy=%s policy=%s cache=%d priority=%s\n",
			strat, cfg.Policy, cfg.CacheChunks, cfg.Priority)
		if res.ResumedCommits > 0 {
			fmt.Fprintf(stdout, "     resumed : %d journaled commits replayed (%d re-verified)\n",
				res.ResumedCommits, res.ResumeVerified)
		}
		fmt.Fprintf(stdout, "     rebuilt : %d chunks in %d stripes (%d verified, %d decoded)\n",
			res.ChunksRebuilt, res.StripesRepaired, res.ChunksVerified, res.ChunksDecoded)
		fmt.Fprintf(stdout, "          io : %d reads, %d cache hits, %d misses, %d B written\n",
			res.DiskReads, res.CacheHits, res.CacheMisses, res.BytesWritten)
		fmt.Fprintf(stdout, "      ladder : %d escalations, %d regenerations\n",
			res.Escalations, res.Regenerations)
		after, err := rebuild.ScanStore(b, m, cfg.Scrub)
		if err != nil {
			return fail(stderr, err)
		}
		if after.Clean() {
			fmt.Fprintf(stdout, "       state : clean\n")
		} else {
			fmt.Fprintf(stdout, "       state : degraded\n")
		}
	}
	if res.DataLoss {
		fmt.Fprintf(stdout, "        lost : %d chunks unrecoverable (data loss)\n", len(res.Lost))
		return exitDamaged
	}
	return exitOK
}

// runDaemon is the watch mode: scan on an interval, run a journaled
// rebuild whenever damage appears, back off on transient failures, and
// shut down gracefully on SIGINT/SIGTERM.
func runDaemon(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fbfctl daemon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "store directory")
	policy := fs.String("policy", "fbf", "cache policy for surviving chunks")
	strategy := fs.String("strategy", "looped", "chain-selection strategy")
	cacheChunks := fs.Int("cache", 64, "cache capacity in chunks (negative disables)")
	interval := fs.Duration("interval", rebuild.DefaultInterval, "pause between clean scans")
	listen := fs.String("listen", "", "serve /metrics, /healthz and /progress on this address (e.g. :9920); empty disables telemetry")
	var opts cli.Options
	fs.Var(&opts, "o", "operator option: scrub, no-verify, priority=..., rate-limit=BYTES/S, retries=N, max-scans=N")
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	if unknown := opts.Unknown("scrub", "no-verify", "priority", "rate-limit", "retries", "max-scans"); len(unknown) > 0 {
		return fail(stderr, fmt.Errorf("unknown -o options %v (daemon knows: scrub, no-verify, priority, rate-limit, retries, max-scans)", unknown))
	}
	strat, err := core.ParseStrategy(*strategy)
	if err != nil {
		return fail(stderr, err)
	}
	m, b, err := openStore(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	backend, throttle, err := throttled(b, &opts)
	if err != nil {
		return fail(stderr, err)
	}
	// Telemetry is armed only with -listen: the instrumented wrapper, the
	// registry and the HTTP server all exist solely on that path, so a
	// plain daemon run takes no listener and no extra work per I/O.
	var dm *telemetry.DaemonMetrics
	var rm *telemetry.RebuildMetrics
	var srv *telemetry.Server
	if *listen != "" {
		reg := telemetry.NewRegistry()
		inst := store.Instrument(backend)
		backend = inst
		telemetry.RegisterBackend(reg, inst)
		if throttle != nil {
			telemetry.RegisterThrottle(reg, throttle)
		}
		rm = telemetry.NewRebuildMetrics(reg)
		dm = telemetry.NewDaemonMetrics(reg)
		srv = telemetry.NewServer(reg, func() any { return dm.Tracker.Snapshot() })
		addr, err := srv.Start(*listen)
		if err != nil {
			return fail(stderr, err)
		}
		defer srv.Close(time.Second)
		fmt.Fprintf(stderr, "fbfctl daemon: serving telemetry on %s\n", addr)
		if testListenReady != nil {
			testListenReady(addr)
		}
	}
	svc := rebuild.ServiceConfig{
		Backend: backend, Manifest: m,
		Policy: *policy, Strategy: strat, CacheChunks: *cacheChunks,
		Priority:    opts.Value("priority", rebuild.PrioritySequential),
		JournalPath: filepath.Join(*storeDir, journalName),
		Metrics:     rm,
	}
	for _, bind := range []struct {
		key string
		dst *bool
	}{
		{"scrub", &svc.Scrub}, {"no-verify", &svc.NoVerify},
	} {
		v, err := opts.Bool(bind.key)
		if err != nil {
			return fail(stderr, err)
		}
		*bind.dst = v
	}
	retries, err := opts.Int64("retries", rebuild.DefaultRetries)
	if err != nil {
		return fail(stderr, err)
	}
	if opts.Has("retries") && retries == 0 {
		retries = -1 // an explicit 0 means "never retry"
	}
	maxScans, err := opts.Int64("max-scans", 0)
	if err != nil {
		return fail(stderr, err)
	}

	stop, cancel := notifyStop()
	defer cancel()
	if srv != nil {
		// Interpose on the stop channel so /healthz flips to 503 strictly
		// before the daemon sees the shutdown request — supervisors
		// watching readiness observe the graceful drain in progress.
		sig := stop
		drain := make(chan struct{})
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-sig:
				srv.SetHealthy(false)
				close(drain)
			case <-done:
			}
		}()
		stop = drain
	}
	res, err := rebuild.RunDaemon(rebuild.DaemonConfig{
		Service: svc, Interval: *interval,
		Retries: int(retries), MaxScans: int(maxScans),
		Stop:    stop,
		Logf:    func(f string, a ...any) { fmt.Fprintf(stderr, "fbfctl daemon: "+f+"\n", a...) },
		Metrics: dm,
	})
	if res != nil {
		fmt.Fprintf(stdout, "       scans : %d (%d rebuilds, %d retries)\n", res.Scans, res.Rebuilds, res.Retries)
		fmt.Fprintf(stdout, "    repaired : %d chunks in %d stripes\n", res.ChunksRebuilt, res.StripesRepaired)
	}
	if err != nil {
		return fail(stderr, err)
	}
	switch {
	case res.DataLoss:
		fmt.Fprintf(stdout, "        lost : unrecoverable chunks (data loss)\n")
		return exitDamaged
	case res.Interrupted:
		if res.Last != nil && res.Last.Interrupted && res.Last.JournalOffset > 0 {
			fmt.Fprintf(stdout, "     journal : synced at offset %d; the next run resumes\n", res.Last.JournalOffset)
		}
		fmt.Fprintf(stdout, "    shutdown : graceful (signal)\n")
		return exitInterrupted
	}
	return exitOK
}
