// Command tracegen generates synthetic partial-stripe-error traces in
// the CSV format consumed by the library, for use in scripted
// experiments and regression baselines.
//
// Usage:
//
//	tracegen -code tip -p 7 -groups 1000 -stripes 16384 -seed 1 > trace.csv
//	tracegen -code star -p 13 -disk 0 -dist geometric -groups 500
package main

import (
	"flag"
	"log"
	"os"

	"fbf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	codeName := flag.String("code", "tip", "code family (star, triplestar, tip, hdd1)")
	p := flag.Int("p", 7, "prime parameter")
	groups := flag.Int("groups", 256, "number of partial stripe error groups")
	stripes := flag.Int("stripes", 1<<14, "stripes on the array")
	seed := flag.Int64("seed", 1, "RNG seed")
	diskFlag := flag.Int("disk", -1, "pin errors to one disk (negative: random disk per group)")
	distName := flag.String("dist", "uniform", "error-size distribution (uniform, fixed, geometric)")
	fixedSize := flag.Int("size", 0, "error size for -dist fixed")
	flag.Parse()

	code, err := fbf.NewCode(*codeName, *p)
	if err != nil {
		log.Fatal(err)
	}
	var dist fbf.SizeDist
	switch *distName {
	case "uniform":
		dist = fbf.SizeUniform
	case "fixed":
		dist = fbf.SizeFixed
	case "geometric":
		dist = fbf.SizeGeometric
	default:
		log.Fatalf("unknown -dist %q", *distName)
	}
	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{
		Groups:    *groups,
		Stripes:   *stripes,
		Seed:      *seed,
		Disk:      *diskFlag,
		Dist:      dist,
		FixedSize: *fixedSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := fbf.WriteTraceCSV(os.Stdout, errors); err != nil {
		log.Fatal(err)
	}
}
