// Command fbfsim regenerates the paper's evaluation artefacts on the
// simulated disk array: Figures 8–11 and Tables IV–V, plus the scheme
// ablation. With no artefact flag it runs the full evaluation.
//
// Usage:
//
//	fbfsim [-fig 8|9|10|11] [-table 4|5] [-ablation]
//	       [-serving] [-rate 100,200,400] [-slo-p99 MS] [-zipf-s S]
//	       [-write-frac F] [-hot-frac F] [-ops N]
//	       [-durability] [-ure-rates 0,0.001,0.01] [-transient-rate R]
//	       [-fault-seed N] [-second-failure-at MS] [-third-failure-at MS] [-trials N]
//	       [-codes star,triplestar,tip,hdd1] [-p 7,11,13]
//	       [-policies fifo,lru,lfu,arc,fbf] [-sizes 8,16,...,2048]
//	       [-groups N] [-workers N] [-stripes N] [-seed N]
//	       [-strategy typical|looped|greedy] [-dist uniform|fixed|geometric]
//	       [-csv] [-parallel N] [-progress]
//	       [-trace-out run.trace.json] [-trace-jsonl run.jsonl]
//	       [-metrics-out metrics.csv|metrics.json] [-metrics-interval MS]
//	       [-pprof-cpu cpu.prof] [-pprof-mem mem.prof]
//
// Sweeps fan their independent simulation runs out across cores
// (-parallel, default GOMAXPROCS); every run is an isolated
// deterministic simulation, so the output is identical at any
// parallelism level.
//
// An observability flag (-trace-out, -trace-jsonl, -metrics-out) runs a
// single instrumented rebuild instead of a sweep — the first configured
// (code, p, policy, size) point, or tip(p=13)/fbf/64MB by default — and
// writes the exports before a one-line summary. Traces are stamped in
// simulated time and reproduce byte for byte; load -trace-out in
// chrome://tracing or Perfetto, or feed -trace-jsonl to fbftrace.
package main

import (
	"fbf"
	"fbf/internal/cli"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fbfsim: ")

	figFlag := flag.Int("fig", 0, "figure to regenerate (8, 9, 10 or 11)")
	tableFlag := flag.Int("table", 0, "table to regenerate (4 or 5)")
	ablation := flag.Bool("ablation", false, "run the chain-selection scheme ablation")
	online := flag.Bool("online", false, "run the online-recovery (foreground load) experiment")
	modes := flag.Bool("modes", false, "run the SOR-vs-DOR reconstruction-mode ablation")
	serving := flag.Bool("serving", false, "run the heavy-traffic serving experiment (foreground latency frontier per policy under rebuild)")
	ratesFlag := flag.String("rate", "100,200,400", "comma-separated client rates (ops/sec) for -serving")
	sloP99 := flag.Float64("slo-p99", 0, "foreground p99 SLO in ms for -serving; > 0 arms the adaptive QoS rebuild throttle")
	zipfS := flag.Float64("zipf-s", 1.2, "stripe-popularity Zipf skew for -serving (<= 1 uniform)")
	writeFrac := flag.Float64("write-frac", 0.1, "parity read-modify-write fraction for -serving")
	hotFrac := flag.Float64("hot-frac", 0.3, "fraction of -serving traffic aimed at stripes under repair")
	servingOps := flag.Int("ops", 0, "foreground operations per -serving run (default 2000)")
	durability := flag.Bool("durability", false, "run the fault-injection durability sweep (data-loss probability and repair makespan vs URE rate)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-schedule RNG seed for -durability")
	ureRatesFlag := flag.String("ure-rates", "0,0.001,0.01", "comma-separated per-address URE rates for -durability")
	transientRate := flag.Float64("transient-rate", 0.01, "per-attempt transient-timeout rate for -durability")
	secondFailureAt := flag.Float64("second-failure-at", 0, "inject a second whole-disk failure at this simulated time (ms) during -durability; 0 disables")
	thirdFailureAt := flag.Float64("third-failure-at", 0, "inject a third whole-disk failure at this simulated time (ms) during -durability; 0 disables")
	trials := flag.Int("trials", 0, "fault schedules averaged per -durability row (default 5)")
	codesFlag := flag.String("codes", "", "comma-separated code families (default: paper's four)")
	primesFlag := flag.String("p", "", "comma-separated primes (default: per-figure paper values)")
	policiesFlag := flag.String("policies", "", "comma-separated cache policies (default: paper's five)")
	sizesFlag := flag.String("sizes", "", "comma-separated cache sizes in MB (default: paper's sweep)")
	groups := flag.Int("groups", 0, "error groups per run (default 256)")
	workers := flag.Int("workers", 0, "parallel recovery processes (default 128)")
	stripes := flag.Int("stripes", 0, "stripes on the array (default 16384)")
	seed := flag.Int64("seed", 1, "trace RNG seed")
	strategyFlag := flag.String("strategy", "looped", "chain-selection strategy (typical, looped, greedy)")
	distFlag := flag.String("dist", "uniform", "error-size distribution (uniform, fixed, geometric)")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of text tables")
	parallel := flag.Int("parallel", 0, "concurrent simulation runs per sweep (0 = GOMAXPROCS, 1 = serial); results are identical at any level")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	traceOut := flag.String("trace-out", "", "run one traced rebuild and write its Chrome trace-event JSON here (load in chrome://tracing or Perfetto)")
	traceJSONL := flag.String("trace-jsonl", "", "run one traced rebuild and write its event stream as JSONL here (fbftrace input)")
	metricsOut := flag.String("metrics-out", "", "run one instrumented rebuild and write its sampled metrics here (CSV if the path ends in .csv, JSON otherwise)")
	metricsInterval := flag.Float64("metrics-interval", 10, "metrics sampling period in simulated ms")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile of the whole invocation here")
	pprofMem := flag.String("pprof-mem", "", "write a heap profile at exit here")
	flag.Parse()

	params := fbf.DefaultExperimentParams()
	params.Seed = *seed
	if *parallel < 0 {
		log.Fatalf("bad -parallel %d: must be >= 0", *parallel)
	}
	params.Parallelism = *parallel
	if *progress {
		params.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfbfsim: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *groups > 0 {
		params.Groups = *groups
	}
	if *workers > 0 {
		params.Workers = *workers
	}
	if *stripes > 0 {
		params.Stripes = *stripes
	}
	if *codesFlag != "" {
		params.Codes = cli.SplitList(*codesFlag)
	}
	if *policiesFlag != "" {
		params.Policies = cli.SplitList(*policiesFlag)
	}
	if *primesFlag != "" {
		primes, err := cli.ParseIntsFlag("p", *primesFlag)
		if err != nil {
			log.Fatal(err)
		}
		params.Primes = primes
	}
	if *sizesFlag != "" {
		sizes, err := cli.ParseIntsFlag("sizes", *sizesFlag)
		if err != nil {
			log.Fatal(err)
		}
		params.CacheSizesMB = sizes
	}
	strategy, err := fbf.ParseStrategy(*strategyFlag)
	if err != nil {
		log.Fatal(err)
	}
	params.Strategy = strategy
	switch *distFlag {
	case "uniform":
		params.Dist = fbf.SizeUniform
	case "fixed":
		params.Dist = fbf.SizeFixed
	case "geometric":
		params.Dist = fbf.SizeGeometric
	default:
		log.Fatalf("bad -dist %q", *distFlag)
	}

	// Validate every output path up front: a long simulation must not
	// discover an unwritable -trace-out/-metrics-out/-pprof-* path only
	// when it finally tries to write.
	outputs := map[string]*os.File{}
	for _, o := range []struct{ name, path string }{
		{"trace-out", *traceOut},
		{"trace-jsonl", *traceJSONL},
		{"metrics-out", *metricsOut},
		{"pprof-cpu", *pprofCPU},
		{"pprof-mem", *pprofMem},
	} {
		if o.path == "" {
			continue
		}
		f, err := cli.CreateOutput(o.name, o.path)
		if err != nil {
			log.Fatal(err)
		}
		outputs[o.name] = f
		defer f.Close()
	}
	if *metricsInterval <= 0 {
		log.Fatalf("bad -metrics-interval %v: must be > 0 ms", *metricsInterval)
	}
	if f := outputs["pprof-cpu"]; f != nil {
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("bad -pprof-cpu: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if f := outputs["pprof-mem"]; f != nil {
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("bad -pprof-mem: %v", err)
			}
		}()
	}

	runAll := *figFlag == 0 && *tableFlag == 0 && !*ablation && !*online && !*modes && !*durability && !*serving
	out := os.Stdout

	runFig := func(n int) {
		var fig *fbf.Figure
		var err error
		p := params
		switch n {
		case 8:
			fig, err = fbf.Fig8(p)
		case 9:
			if *primesFlag == "" {
				p.Primes = []int{5, 7, 11, 13}
			}
			fig, err = fbf.Fig9(p)
		case 10:
			fig, err = fbf.Fig10(p)
		case 11:
			if *primesFlag == "" {
				p.Primes = []int{5, 7, 11, 13}
			}
			fig, err = fbf.Fig11(p)
		default:
			log.Fatalf("unknown figure %d (have 8, 9, 10, 11)", n)
		}
		if err != nil {
			log.Fatalf("figure %d: %v", n, err)
		}
		if *csv {
			if err := fbf.RenderFigureCSV(out, fig); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := fbf.RenderFigure(out, fig, p.Policies); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runTable := func(n int) {
		switch n {
		case 4:
			p := params
			if *primesFlag == "" {
				p.Primes = []int{5, 7, 11, 13}
			}
			rows, err := fbf.Table4(p)
			if err != nil {
				log.Fatalf("table 4: %v", err)
			}
			if err := fbf.RenderTable4(out, rows, p.Codes); err != nil {
				log.Fatal(err)
			}
		case 5:
			points, err := fbf.Sweep(params)
			if err != nil {
				log.Fatalf("table 5 sweep: %v", err)
			}
			if err := fbf.RenderTable5(out, fbf.Table5(points)); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown table %d (have 4, 5)", n)
		}
		fmt.Fprintln(out)
	}

	runAblation := func() {
		p := params
		rows, err := fbf.SchemeAblation(p)
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		if err := fbf.RenderSchemeAblation(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runOnline := func() {
		p := params
		if *codesFlag == "" {
			p.Codes = []string{"tip"}
		}
		if *primesFlag == "" {
			p.Primes = []int{13}
		}
		rows, err := fbf.OnlineRecovery(p, fbf.AppWorkload{Seed: p.Seed})
		if err != nil {
			log.Fatalf("online: %v", err)
		}
		if err := fbf.RenderOnline(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runModes := func() {
		p := params
		if *codesFlag == "" {
			p.Codes = []string{"tip"}
		}
		if *primesFlag == "" {
			p.Primes = []int{13}
		}
		rows, err := fbf.ModeComparison(p)
		if err != nil {
			log.Fatalf("modes: %v", err)
		}
		if err := fbf.RenderModes(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runServing := func() {
		p := params
		if *codesFlag == "" {
			p.Codes = []string{"tip"}
		}
		if *primesFlag == "" {
			p.Primes = []int{13}
		}
		rates, err := cli.ParseFloatsFlag("rate", *ratesFlag)
		if err != nil {
			log.Fatal(err)
		}
		sc := fbf.ServingSweepConfig{
			Rates: rates, Ops: *servingOps, Seed: p.Seed,
			ZipfS: *zipfS, WriteFrac: *writeFrac, HotFrac: *hotFrac,
		}
		if *sloP99 > 0 {
			sc.QoS = &fbf.QoSConfig{SLOp99Ms: *sloP99}
		}
		rows, err := fbf.ServingSweep(p, sc)
		if err != nil {
			log.Fatalf("serving: %v", err)
		}
		if *csv {
			if err := fbf.RenderServingCSV(out, rows); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := fbf.RenderServing(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runDurability := func() {
		p := params
		if *codesFlag == "" {
			p.Codes = []string{"tip"}
		}
		if *primesFlag == "" {
			p.Primes = []int{7}
		}
		rates, err := cli.ParseFloatsFlag("ure-rates", *ureRatesFlag)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := fbf.Durability(p, fbf.DurabilityConfig{
			URERates:        rates,
			TransientRate:   *transientRate,
			FaultSeed:       *faultSeed,
			Trials:          *trials,
			SecondFailureAt: fbf.SimTime(*secondFailureAt * float64(fbf.Millisecond)),
			ThirdFailureAt:  fbf.SimTime(*thirdFailureAt * float64(fbf.Millisecond)),
		})
		if err != nil {
			log.Fatalf("durability: %v", err)
		}
		if err := fbf.RenderDurability(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	// An observability sink runs one instrumented rebuild instead of a
	// sweep: the first configured (code, p, policy, size) point — or the
	// paper's tip(p=13)/fbf/64MB when the axes were left at their
	// defaults — traced and/or sampled, with the exports written before
	// the summary line. The trace is stamped in simulated time, so the
	// same flags reproduce it byte for byte (unless ChargeSchemeGen-style
	// wall-clock charging is enabled elsewhere).
	if outputs["trace-out"] != nil || outputs["trace-jsonl"] != nil || outputs["metrics-out"] != nil {
		code, prime, policy, sizeMB := "tip", 13, "fbf", 64
		if *codesFlag != "" {
			code = params.Codes[0]
		}
		if *primesFlag != "" {
			prime = params.Primes[0]
		}
		if *policiesFlag != "" {
			policy = params.Policies[0]
		}
		if *sizesFlag != "" {
			sizeMB = params.CacheSizesMB[0]
		}
		geom, err := fbf.ResolveGeometry(code, prime)
		if err != nil {
			log.Fatal(err)
		}
		errs, err := fbf.GenerateTrace(geom, fbf.TraceConfig{
			Groups: params.Groups, Stripes: params.Stripes,
			Seed: params.Seed, Disk: -1, Dist: params.Dist,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := fbf.SimConfig{
			Code: geom, Policy: policy, Strategy: params.Strategy,
			Workers: params.Workers, CacheChunks: params.CacheChunks(sizeMB),
			ChunkSize: params.ChunkSizeKB * 1024, Stripes: params.Stripes,
		}
		var collector *fbf.TraceCollector
		if outputs["trace-out"] != nil || outputs["trace-jsonl"] != nil {
			collector = fbf.NewTraceCollector()
			cfg.Tracer = collector
		}
		var reg *fbf.MetricsRegistry
		if outputs["metrics-out"] != nil {
			reg = fbf.NewMetricsRegistry()
			cfg.Metrics = reg
			cfg.MetricsInterval = fbf.SimTime(*metricsInterval * float64(fbf.Millisecond))
		}
		res, err := fbf.Run(cfg, errs)
		if err != nil {
			log.Fatal(err)
		}
		if f := outputs["trace-out"]; f != nil {
			if err := fbf.WriteChromeTrace(f, collector.Events()); err != nil {
				log.Fatalf("-trace-out: %v", err)
			}
		}
		if f := outputs["trace-jsonl"]; f != nil {
			if err := fbf.WriteTraceJSONL(f, collector.Events()); err != nil {
				log.Fatalf("-trace-jsonl: %v", err)
			}
		}
		if f := outputs["metrics-out"]; f != nil {
			if strings.HasSuffix(*metricsOut, ".csv") {
				err = reg.WriteCSV(f)
			} else {
				err = reg.WriteJSON(f)
			}
			if err != nil {
				log.Fatalf("-metrics-out: %v", err)
			}
		}
		events := 0
		if collector != nil {
			events = collector.Len()
		}
		fmt.Fprintf(out, "observed run %s(p=%d) %s %dMB: hit ratio %.3f, %d disk reads, %v reconstruction, %d trace events\n",
			code, prime, policy, sizeMB, res.HitRatio(), res.DiskReads, res.Makespan, events)
		return
	}

	switch {
	case runAll:
		for _, n := range []int{8, 9, 10, 11} {
			runFig(n)
		}
		runTable(4)
		runTable(5)
		runAblation()
		runOnline()
		runModes()
	default:
		if *figFlag != 0 {
			runFig(*figFlag)
		}
		if *tableFlag != 0 {
			runTable(*tableFlag)
		}
		if *ablation {
			runAblation()
		}
		if *online {
			runOnline()
		}
		if *modes {
			runModes()
		}
		if *durability {
			runDurability()
		}
		if *serving {
			runServing()
		}
	}
}
