// Command fbfsim regenerates the paper's evaluation artefacts on the
// simulated disk array: Figures 8–11 and Tables IV–V, plus the scheme
// ablation. With no artefact flag it runs the full evaluation.
//
// Usage:
//
//	fbfsim [-fig 8|9|10|11] [-table 4|5] [-ablation]
//	       [-durability] [-ure-rates 0,0.001,0.01] [-transient-rate R]
//	       [-fault-seed N] [-second-failure-at MS] [-third-failure-at MS] [-trials N]
//	       [-codes star,triplestar,tip,hdd1] [-p 7,11,13]
//	       [-policies fifo,lru,lfu,arc,fbf] [-sizes 8,16,...,2048]
//	       [-groups N] [-workers N] [-stripes N] [-seed N]
//	       [-strategy typical|looped|greedy] [-dist uniform|fixed|geometric]
//	       [-csv] [-parallel N] [-progress]
//
// Sweeps fan their independent simulation runs out across cores
// (-parallel, default GOMAXPROCS); every run is an isolated
// deterministic simulation, so the output is identical at any
// parallelism level.
package main

import (
	"fbf"
	"fbf/internal/cli"
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fbfsim: ")

	figFlag := flag.Int("fig", 0, "figure to regenerate (8, 9, 10 or 11)")
	tableFlag := flag.Int("table", 0, "table to regenerate (4 or 5)")
	ablation := flag.Bool("ablation", false, "run the chain-selection scheme ablation")
	online := flag.Bool("online", false, "run the online-recovery (foreground load) experiment")
	modes := flag.Bool("modes", false, "run the SOR-vs-DOR reconstruction-mode ablation")
	durability := flag.Bool("durability", false, "run the fault-injection durability sweep (data-loss probability and repair makespan vs URE rate)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-schedule RNG seed for -durability")
	ureRatesFlag := flag.String("ure-rates", "0,0.001,0.01", "comma-separated per-address URE rates for -durability")
	transientRate := flag.Float64("transient-rate", 0.01, "per-attempt transient-timeout rate for -durability")
	secondFailureAt := flag.Float64("second-failure-at", 0, "inject a second whole-disk failure at this simulated time (ms) during -durability; 0 disables")
	thirdFailureAt := flag.Float64("third-failure-at", 0, "inject a third whole-disk failure at this simulated time (ms) during -durability; 0 disables")
	trials := flag.Int("trials", 0, "fault schedules averaged per -durability row (default 5)")
	codesFlag := flag.String("codes", "", "comma-separated code families (default: paper's four)")
	primesFlag := flag.String("p", "", "comma-separated primes (default: per-figure paper values)")
	policiesFlag := flag.String("policies", "", "comma-separated cache policies (default: paper's five)")
	sizesFlag := flag.String("sizes", "", "comma-separated cache sizes in MB (default: paper's sweep)")
	groups := flag.Int("groups", 0, "error groups per run (default 256)")
	workers := flag.Int("workers", 0, "parallel recovery processes (default 128)")
	stripes := flag.Int("stripes", 0, "stripes on the array (default 16384)")
	seed := flag.Int64("seed", 1, "trace RNG seed")
	strategyFlag := flag.String("strategy", "looped", "chain-selection strategy (typical, looped, greedy)")
	distFlag := flag.String("dist", "uniform", "error-size distribution (uniform, fixed, geometric)")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of text tables")
	parallel := flag.Int("parallel", 0, "concurrent simulation runs per sweep (0 = GOMAXPROCS, 1 = serial); results are identical at any level")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	flag.Parse()

	params := fbf.DefaultExperimentParams()
	params.Seed = *seed
	if *parallel < 0 {
		log.Fatalf("bad -parallel %d: must be >= 0", *parallel)
	}
	params.Parallelism = *parallel
	if *progress {
		params.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfbfsim: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *groups > 0 {
		params.Groups = *groups
	}
	if *workers > 0 {
		params.Workers = *workers
	}
	if *stripes > 0 {
		params.Stripes = *stripes
	}
	if *codesFlag != "" {
		params.Codes = cli.SplitList(*codesFlag)
	}
	if *policiesFlag != "" {
		params.Policies = cli.SplitList(*policiesFlag)
	}
	if *primesFlag != "" {
		primes, err := cli.ParseInts(*primesFlag)
		if err != nil {
			log.Fatalf("bad -p: %v", err)
		}
		params.Primes = primes
	}
	if *sizesFlag != "" {
		sizes, err := cli.ParseInts(*sizesFlag)
		if err != nil {
			log.Fatalf("bad -sizes: %v", err)
		}
		params.CacheSizesMB = sizes
	}
	strategy, err := fbf.ParseStrategy(*strategyFlag)
	if err != nil {
		log.Fatal(err)
	}
	params.Strategy = strategy
	switch *distFlag {
	case "uniform":
		params.Dist = fbf.SizeUniform
	case "fixed":
		params.Dist = fbf.SizeFixed
	case "geometric":
		params.Dist = fbf.SizeGeometric
	default:
		log.Fatalf("bad -dist %q", *distFlag)
	}

	runAll := *figFlag == 0 && *tableFlag == 0 && !*ablation && !*online && !*modes && !*durability
	out := os.Stdout

	runFig := func(n int) {
		var fig *fbf.Figure
		var err error
		p := params
		switch n {
		case 8:
			fig, err = fbf.Fig8(p)
		case 9:
			if *primesFlag == "" {
				p.Primes = []int{5, 7, 11, 13}
			}
			fig, err = fbf.Fig9(p)
		case 10:
			fig, err = fbf.Fig10(p)
		case 11:
			if *primesFlag == "" {
				p.Primes = []int{5, 7, 11, 13}
			}
			fig, err = fbf.Fig11(p)
		default:
			log.Fatalf("unknown figure %d (have 8, 9, 10, 11)", n)
		}
		if err != nil {
			log.Fatalf("figure %d: %v", n, err)
		}
		if *csv {
			if err := fbf.RenderFigureCSV(out, fig); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := fbf.RenderFigure(out, fig, p.Policies); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runTable := func(n int) {
		switch n {
		case 4:
			p := params
			if *primesFlag == "" {
				p.Primes = []int{5, 7, 11, 13}
			}
			rows, err := fbf.Table4(p)
			if err != nil {
				log.Fatalf("table 4: %v", err)
			}
			if err := fbf.RenderTable4(out, rows, p.Codes); err != nil {
				log.Fatal(err)
			}
		case 5:
			points, err := fbf.Sweep(params)
			if err != nil {
				log.Fatalf("table 5 sweep: %v", err)
			}
			if err := fbf.RenderTable5(out, fbf.Table5(points)); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown table %d (have 4, 5)", n)
		}
		fmt.Fprintln(out)
	}

	runAblation := func() {
		p := params
		rows, err := fbf.SchemeAblation(p)
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		if err := fbf.RenderSchemeAblation(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runOnline := func() {
		p := params
		if *codesFlag == "" {
			p.Codes = []string{"tip"}
		}
		if *primesFlag == "" {
			p.Primes = []int{13}
		}
		rows, err := fbf.OnlineRecovery(p, fbf.AppWorkload{Seed: p.Seed})
		if err != nil {
			log.Fatalf("online: %v", err)
		}
		if err := fbf.RenderOnline(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runModes := func() {
		p := params
		if *codesFlag == "" {
			p.Codes = []string{"tip"}
		}
		if *primesFlag == "" {
			p.Primes = []int{13}
		}
		rows, err := fbf.ModeComparison(p)
		if err != nil {
			log.Fatalf("modes: %v", err)
		}
		if err := fbf.RenderModes(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	runDurability := func() {
		p := params
		if *codesFlag == "" {
			p.Codes = []string{"tip"}
		}
		if *primesFlag == "" {
			p.Primes = []int{7}
		}
		rates, err := cli.ParseFloats(*ureRatesFlag)
		if err != nil {
			log.Fatalf("bad -ure-rates: %v", err)
		}
		rows, err := fbf.Durability(p, fbf.DurabilityConfig{
			URERates:        rates,
			TransientRate:   *transientRate,
			FaultSeed:       *faultSeed,
			Trials:          *trials,
			SecondFailureAt: fbf.SimTime(*secondFailureAt * float64(fbf.Millisecond)),
			ThirdFailureAt:  fbf.SimTime(*thirdFailureAt * float64(fbf.Millisecond)),
		})
		if err != nil {
			log.Fatalf("durability: %v", err)
		}
		if err := fbf.RenderDurability(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}

	switch {
	case runAll:
		for _, n := range []int{8, 9, 10, 11} {
			runFig(n)
		}
		runTable(4)
		runTable(5)
		runAblation()
		runOnline()
		runModes()
	default:
		if *figFlag != 0 {
			runFig(*figFlag)
		}
		if *tableFlag != 0 {
			runTable(*tableFlag)
		}
		if *ablation {
			runAblation()
		}
		if *online {
			runOnline()
		}
		if *modes {
			runModes()
		}
		if *durability {
			runDurability()
		}
	}
}
