// Command fbfverify runs the byte-level conformance harness from the
// command line: the stripe recovery sweep (every single-disk partial
// stripe error pattern, recovered through the generated schemes and
// cross-checked against the GF(2) decoder oracle), the cache-policy
// model check (randomized streams diffed step-by-step against reference
// models), and an end-to-end reconstruction-engine pass that carries
// real chunk contents (rebuild's VerifyData mode).
//
// Usage:
//
//	fbfverify [-codes star,triplestar,tip,hdd1] [-p 5,7]
//	          [-strategies typical,looped,greedy] [-chunk 64] [-seed 1]
//	          [-policies fbf,lru,...] [-steps 10000] [-caps 1,2,3,8,32]
//	          [-stripe-sweep] [-cache-check] [-engine]
//
// The exit status is non-zero if any check finds a divergence, making
// the binary suitable as a CI gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fbf/internal/cli"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/experiments"
	"fbf/internal/rebuild"
	"fbf/internal/trace"
	"fbf/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fbfverify: ")

	codesFlag := flag.String("codes", "star,triplestar,tip,hdd1", "comma-separated code families to sweep")
	primesFlag := flag.String("p", "5,7", "comma-separated primes per family")
	strategiesFlag := flag.String("strategies", "typical,looped,greedy", "comma-separated chain-selection strategies")
	chunkSize := flag.Int("chunk", 64, "chunk size in bytes for materialized stripes")
	seed := flag.Int64("seed", 1, "seed for stripe contents and request streams")
	policiesFlag := flag.String("policies", strings.Join(verify.CheckedPolicies(), ","), "comma-separated cache policies to model-check")
	steps := flag.Int("steps", 10000, "randomized requests per (policy, capacity) model check")
	capsFlag := flag.String("caps", "1,2,3,8,32", "comma-separated cache capacities (chunks) to model-check")
	stripeSweep := flag.Bool("stripe-sweep", true, "run the stripe recovery conformance sweep")
	cacheCheck := flag.Bool("cache-check", true, "run the cache-policy model check")
	engine := flag.Bool("engine", true, "run a VerifyData reconstruction pass per (code, prime)")
	flag.Parse()

	var strategies []core.Strategy
	for _, name := range cli.SplitList(*strategiesFlag) {
		s, err := core.ParseStrategy(name)
		if err != nil {
			log.Fatal(err)
		}
		strategies = append(strategies, s)
	}
	primes, err := cli.ParseInts(*primesFlag)
	if err != nil {
		log.Fatalf("bad -p: %v", err)
	}
	caps, err := cli.ParseInts(*capsFlag)
	if err != nil {
		log.Fatalf("bad -caps: %v", err)
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "FAIL "+format+"\n", args...)
	}

	if *stripeSweep {
		for _, name := range cli.SplitList(*codesFlag) {
			for _, p := range primes {
				geom, err := experiments.ResolveGeometry(name, p)
				if err != nil {
					log.Fatal(err)
				}
				code, ok := geom.(*codes.Code)
				if !ok {
					fail("stripe sweep %s(p=%d): geometry is not an XOR chain code", name, p)
					continue
				}
				rep, err := verify.SweepStripes(verify.StripeConfig{
					Code:       code,
					Strategies: strategies,
					ChunkSize:  *chunkSize,
					Seed:       *seed,
				})
				if err != nil {
					fail("stripe sweep %s(p=%d): %v", name, p, err)
					continue
				}
				fmt.Printf("ok   stripe sweep %v\n", rep)
			}
		}
	}

	if *cacheCheck {
		for _, policy := range cli.SplitList(*policiesFlag) {
			for _, capacity := range caps {
				rep, err := verify.CheckCache(verify.CacheConfig{
					Policy:   policy,
					Capacity: capacity,
					Steps:    *steps,
					Seed:     *seed,
				})
				if err != nil {
					fail("cache check %s cap=%d: %v", policy, capacity, err)
					continue
				}
				fmt.Printf("ok   cache check %s cap=%d: %d steps, %d hits, %d evictions\n",
					rep.Policy, rep.Capacity, rep.Steps, rep.Stats.Hits, rep.Stats.Evictions)
			}
		}
	}

	if *engine {
		for _, name := range cli.SplitList(*codesFlag) {
			for _, p := range primes {
				geom, err := experiments.ResolveGeometry(name, p)
				if err != nil {
					log.Fatal(err)
				}
				const stripes = 256
				errs, err := trace.Generate(geom, trace.Config{
					Groups: 64, Stripes: stripes, Seed: *seed, Disk: -1,
				})
				if err != nil {
					log.Fatal(err)
				}
				cfg := rebuild.Config{
					Code:        geom,
					Policy:      "fbf",
					Strategy:    core.StrategyLooped,
					Workers:     8,
					CacheChunks: 64,
					ChunkSize:   *chunkSize,
					Stripes:     stripes,
					VerifyData:  true,
				}
				res, err := rebuild.Run(cfg, errs)
				if err != nil {
					fail("engine pass %s(p=%d): %v", name, p, err)
					continue
				}
				if res.VerifiedChunks == 0 {
					fail("engine pass %s(p=%d): VerifyData run verified zero chunks", name, p)
					continue
				}
				fmt.Printf("ok   engine pass %s(p=%d): %d chunks byte-verified across %d groups\n",
					name, p, res.VerifiedChunks, res.Groups)
			}
		}
	}

	if failures > 0 {
		log.Fatalf("%d check(s) failed", failures)
	}
	fmt.Println("all checks passed")
}
