// Command layoutview renders erasure-code stripe layouts and recovery
// schemes as text, reproducing the paper's Figures 1–3: the encoding
// layout of a code (which cells are data or parity and which chains
// cross them) and the chain selection plus priority dictionary for a
// partial stripe error.
//
// Usage:
//
//	layoutview -code tip -p 5                         # Figure 1
//	layoutview -code tip -p 5 -disk 0 -row 0 -size 4  # Figure 2 (typical vs FBF)
//	layoutview -code tip -p 7 -disk 0 -row 0 -size 5  # Figure 3 + Table III
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fbf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutview: ")
	codeName := flag.String("code", "tip", "code family (star, triplestar, tip, hdd1)")
	p := flag.Int("p", 5, "prime parameter")
	disk := flag.Int("disk", -1, "failed disk; negative renders the layout only")
	row := flag.Int("row", 0, "first bad row of the partial stripe error")
	size := flag.Int("size", 0, "number of contiguous bad chunks")
	flag.Parse()

	code, err := fbf.NewCode(*codeName, *p)
	if err != nil {
		log.Fatal(err)
	}
	printLayout(code)
	if *disk < 0 {
		return
	}
	e := fbf.PartialStripeError{Disk: *disk, Row: *row, Size: *size}
	for _, strategy := range []fbf.Strategy{fbf.StrategyTypical, fbf.StrategyLooped} {
		scheme, err := fbf.GenerateScheme(code, e, strategy)
		if err != nil {
			log.Fatal(err)
		}
		printScheme(code, scheme)
	}
}

// printLayout draws the stripe grid: D for data, H/D/A-flavored parity
// markers, with each cell annotated by the chains through it.
func printLayout(code *fbf.Code) {
	layout := code.Layout()
	fmt.Printf("%s: %d disks, %d rows per stripe, %d parity cells per stripe\n\n",
		code, code.Disks(), code.Rows(), len(layout.ParityCells()))

	header := []string{""}
	for c := 0; c < layout.Cols(); c++ {
		header = append(header, fmt.Sprintf("Disk%d", c))
	}
	rows := [][]string{header}
	for r := 0; r < layout.Rows(); r++ {
		cells := []string{fmt.Sprintf("row%d", r)}
		for c := 0; c < layout.Cols(); c++ {
			cell := fbf.Coord{Row: r, Col: c}
			mark := "d"
			if layout.IsParity(cell) {
				mark = "P"
			}
			var kinds []string
			for _, ch := range layout.ChainsThrough(cell) {
				kinds = append(kinds, map[fbf.ChainKind]string{
					fbf.Horizontal: "h", fbf.Diagonal: "d", fbf.AntiDiagonal: "a",
				}[ch.Kind])
			}
			cells = append(cells, fmt.Sprintf("%s[%s]", mark, strings.Join(dedupe(kinds), "")))
		}
		rows = append(rows, cells)
	}
	render(rows)
	fmt.Println("\n(d = data, P = parity; brackets list the chain directions through the cell:")
	fmt.Println(" h = horizontal, d = diagonal, a = anti-diagonal)")
}

// printScheme reports chain selection, the fetch set and the priority
// dictionary — the content of the paper's Figure 2/3 and Table III.
func printScheme(code *fbf.Code, s *fbf.Scheme) {
	fmt.Printf("\n=== %s recovery scheme for %v ===\n", strings.ToUpper(s.Strategy.String()), s.Err)
	for _, sel := range s.Selected {
		fetches := make([]string, len(sel.Fetch))
		for i, f := range sel.Fetch {
			fetches[i] = f.String()
		}
		fmt.Printf("  rebuild %v via %s#%d: fetch %s\n", sel.Lost, sel.Chain.Kind, sel.Chain.Index, strings.Join(fetches, " "))
	}
	fmt.Printf("  total requests: %d, unique chunks read: %d, shared chunks: %d\n",
		s.TotalRequests(), s.UniqueFetches(), s.SharedChunks())
	groups := s.PriorityGroups()
	for pr := 3; pr >= 1; pr-- {
		cells := groups[pr-1]
		if len(cells) == 0 {
			continue
		}
		names := make([]string, len(cells))
		for i, c := range cells {
			names[i] = c.String()
		}
		fmt.Printf("  priority %d: %s\n", pr, strings.Join(names, ", "))
	}
}

func dedupe(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func render(rows [][]string) {
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(os.Stdout, strings.TrimRight(sb.String(), " "))
	}
}
