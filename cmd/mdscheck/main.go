// Command mdscheck verifies the fault coverage of every erasure code in
// the repository and, for the placement-family TIP/HDD1 codes, can scan
// the parameter space for the placement with the best verified
// triple-fault coverage. Its output backs the fidelity table in
// DESIGN.md.
//
// Usage:
//
//	mdscheck [-p 5,7,11,13] [-codes star,triplestar,tip,hdd1]
//	mdscheck -search [-distributed] [-budget N] [-p 5,7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"fbf/internal/cli"
	"fbf/internal/codes"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdscheck: ")
	primesFlag := flag.String("p", "5,7,11,13", "comma-separated primes to check")
	codesFlag := flag.String("codes", strings.Join(codes.Names(), ","), "comma-separated code names")
	search := flag.Bool("search", false, "search the TIP/HDD1 placement family instead of checking the built-in codes")
	distributed := flag.Bool("distributed", false, "restrict the search to distributed diagonal-parity placements")
	budget := flag.Int("budget", 0, "max candidates per search (0 = unbounded)")
	flag.Parse()

	primes, err := cli.ParseInts(*primesFlag)
	if err != nil {
		log.Fatalf("bad -p: %v", err)
	}

	okAll := true
	for _, p := range primes {
		if *search {
			start := time.Now()
			res, err := codes.SearchPlacement(p, *budget, *distributed)
			if err != nil {
				log.Fatalf("search p=%d: %v", p, err)
			}
			fmt.Printf("placement    p=%-3d best=%+v coverage %d/%d searched=%d (%.2fs)\n",
				p, res.Params, res.Covered, res.Total, res.Searched, time.Since(start).Seconds())
			if !res.Full() {
				okAll = false
			}
			continue
		}
		for _, name := range strings.Split(*codesFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			code, err := codes.New(name, p)
			if err != nil {
				log.Fatalf("%s(p=%d): %v", name, p, err)
			}
			start := time.Now()
			ok, total, failing := code.TripleFaultCoverage()
			status := "FULL"
			if ok != total {
				status = fmt.Sprintf("PARTIAL (%d failing, e.g. %v)", len(failing), failing[0])
				okAll = false
			}
			fmt.Printf("%-12s p=%-3d disks=%-3d triple-fault coverage %d/%d %s  (%.2fs)\n",
				name, p, code.Disks(), ok, total, status, time.Since(start).Seconds())
		}
	}
	if !okAll {
		os.Exit(1)
	}
}
