// Command fbftrace reports on rebuild traces captured with fbfsim's
// -trace-jsonl / -trace-out flags (or any obs.Tracer sink).
//
// Usage:
//
//	fbftrace run.jsonl              print the per-phase breakdown
//	fbftrace -validate run.trace.json   check a Chrome trace-event export
//
// The summary breaks the run down by phase (scheme generation, disk
// reads, XOR compute, spare writes), reports time-weighted per-disk
// utilization with peak queue occupancy, and tallies every instant
// event (cache hits/misses, fault-ladder steps). Traces captured under
// a serving workload (fbfsim -serving) additionally get a per-stripe-
// class latency table — healthy, degraded and lost reads/writes with
// exact nearest-rank p50/p99 over the simulated latencies — so the
// paper's partial-recovery serving claims can be read off one report.
//
// -validate parses a -trace-out file and checks the schema every event
// must satisfy (known phase, pid/tid present, spans carrying their
// duration), so CI can gate on trace well-formedness without loading
// the file into a viewer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"fbf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fbftrace: ")
	validate := flag.Bool("validate", false, "treat the input as a Chrome trace-event JSON export and check its schema instead of summarizing")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: fbftrace [-validate] <trace file>")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	if *validate {
		n, err := validateChrome(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: valid Chrome trace, %d events\n", path, n)
		return
	}

	events, err := fbf.ReadTraceJSONL(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if err := fbf.ValidateTrace(events); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if err := fbf.RenderTraceSummary(os.Stdout, fbf.SummarizeTrace(events)); err != nil {
		log.Fatal(err)
	}
}

// validateChrome checks a Chrome trace-event JSON document: the
// top-level shape, and for every event a known phase, a non-empty name,
// track coordinates and a non-negative timestamp (spans additionally a
// non-negative duration). Returns the payload event count (metadata
// excluded).
func validateChrome(f *os.File) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			PID  *int            `json:"pid"`
			TID  *int            `json:"tid"`
			TS   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		Unit string `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(f)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.Unit != "ms" {
		return 0, fmt.Errorf("displayTimeUnit = %q, want \"ms\"", doc.Unit)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("empty traceEvents array")
	}
	payload := 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return 0, fmt.Errorf("event %d: empty name", i)
		}
		if e.PID == nil || e.TID == nil {
			return 0, fmt.Errorf("event %d (%s): missing pid/tid", i, e.Name)
		}
		switch e.Ph {
		case "M":
			continue // metadata: process_name / thread_name
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return 0, fmt.Errorf("event %d (%s): span without non-negative dur", i, e.Name)
			}
		case "i", "C":
		default:
			return 0, fmt.Errorf("event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.TS == nil || *e.TS < 0 {
			return 0, fmt.Errorf("event %d (%s): missing or negative ts", i, e.Name)
		}
		if e.Ph == "C" && len(e.Args) == 0 {
			return 0, fmt.Errorf("event %d (%s): counter without args", i, e.Name)
		}
		payload++
	}
	if payload == 0 {
		return 0, fmt.Errorf("trace holds only metadata events")
	}
	return payload, nil
}
