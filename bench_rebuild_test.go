// Engine-focused benchmarks: where the figure benchmarks report the
// paper's metrics, these measure the simulator itself — ns/op and
// allocs/op of a full SOR rebuild per code and policy, raw XOR
// throughput, and scheme-generation latency. TestWriteBenchJSON reruns
// them via testing.Benchmark and emits BENCH_rebuild.json, the
// machine-readable baseline checked in at the repo root.
package fbf_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"fbf"
	"fbf/internal/chunk"
)

// benchRebuildPolicies is the pair the paper's headline comparison
// needs; the full five-policy grid runs via the figure benchmarks.
var benchRebuildPolicies = []string{"lru", "fbf"}

// benchRebuild drives one full SOR reconstruction per iteration —
// scheme generation, cache replay, disk simulation, XOR and spare
// writes — and reports the engine's own cost (ns/op, allocs/op)
// alongside the simulated makespan.
func benchRebuild(b *testing.B, codeName, policy string) {
	b.Helper()
	code := fbf.MustNewCode(codeName, 13)
	errors := benchTrace(b, code, 48)
	b.ReportAllocs()
	b.ResetTimer()
	var last *fbf.SimResult
	for i := 0; i < b.N; i++ {
		res, err := fbf.Run(fbf.SimConfig{
			Code: code, Policy: policy, Strategy: fbf.StrategyLooped,
			Workers: 64, CacheChunks: 32 * 1024 / 32, Stripes: 1 << 13,
		}, errors)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Makespan.Milliseconds(), "recon-ms")
	b.ReportMetric(last.HitRatio(), "hit-ratio")
}

// BenchmarkRebuild measures the engine per code family and policy.
func BenchmarkRebuild(b *testing.B) {
	for _, codeName := range fbf.CodeNames() {
		for _, policy := range benchRebuildPolicies {
			b.Run(fmt.Sprintf("code=%s/policy=%s", codeName, policy), func(b *testing.B) {
				benchRebuild(b, codeName, policy)
			})
		}
	}
}

// benchXOR measures raw accumulator XOR throughput at the paper's 32 KB
// chunk size — the compute kernel of every chain repair.
func benchXOR(b *testing.B) {
	const size = 32 * 1024
	acc := chunk.New(size)
	src := chunk.New(size)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk.XORInto(acc, src)
	}
}

// BenchmarkXOR reports chunk-XOR throughput (MB/s).
func BenchmarkXOR(b *testing.B) { benchXOR(b) }

// xorKernelSizes sweeps the XOR kernel across its dispatch regimes:
// below 256 bytes XORInto runs the unrolled scalar word loop, at and
// above it routes through crypto/subtle's vectorized XORBytes.
var xorKernelSizes = []int{64, 255, 256, 4 * 1024, 32 * 1024, 256 * 1024}

// benchXORKernel measures one size point of the kernel sweep.
func benchXORKernel(b *testing.B, size int) {
	b.Helper()
	acc := chunk.New(size)
	src := chunk.New(size)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk.XORInto(acc, src)
	}
}

// BenchmarkXORKernel reports kernel throughput per buffer size.
func BenchmarkXORKernel(b *testing.B) {
	for _, size := range xorKernelSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) { benchXORKernel(b, size) })
	}
}

// benchSchemeGen measures one looped-scheme generation — the paper's
// Table IV temporal overhead — for a mid-sized error.
func benchSchemeGen(b *testing.B, codeName string) {
	b.Helper()
	code := fbf.MustNewCode(codeName, 13)
	e := fbf.PartialStripeError{Disk: 0, Row: 0, Size: code.Rows() / 2}
	if e.Size == 0 {
		e.Size = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fbf.GenerateScheme(code, e, fbf.StrategyLooped); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemeGen measures scheme-generation latency per code.
func BenchmarkSchemeGen(b *testing.B) {
	for _, codeName := range fbf.CodeNames() {
		b.Run("code="+codeName, func(b *testing.B) { benchSchemeGen(b, codeName) })
	}
}

var benchJSONOut = flag.String("bench-json", "", "write machine-readable engine benchmark results (BENCH_rebuild.json) to this path")

// benchRecord is one benchmark's machine-readable result.
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// TestWriteBenchJSON reruns the engine benchmarks through
// testing.Benchmark and writes BENCH_rebuild.json. Skipped unless
// -bench-json names an output path:
//
//	go test -run WriteBenchJSON -bench-json BENCH_rebuild.json .
//
// Wall-clock numbers vary by host; the file records which host-speed
// regime produced a given simulation result set, it is not a golden
// file.
func TestWriteBenchJSON(t *testing.T) {
	if *benchJSONOut == "" {
		t.Skip("run with -bench-json <path> to emit BENCH_rebuild.json")
	}
	var records []benchRecord
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rec := benchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		// BenchmarkResult keeps SetBytes throughput in r.Bytes, not in
		// Extra (the old Extra["MB/s"] lookup always missed, recording 0).
		if r.Bytes > 0 && r.T > 0 {
			rec.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		metrics := map[string]float64{}
		for k, v := range r.Extra {
			if k != "MB/s" {
				metrics[k] = v
			}
		}
		if len(metrics) > 0 {
			rec.Metrics = metrics
		}
		records = append(records, rec)
	}
	for _, codeName := range fbf.CodeNames() {
		for _, policy := range benchRebuildPolicies {
			codeName, policy := codeName, policy
			add(fmt.Sprintf("Rebuild/code=%s/policy=%s", codeName, policy), func(b *testing.B) {
				benchRebuild(b, codeName, policy)
			})
		}
	}
	add("XOR/32KB", benchXOR)
	for _, size := range xorKernelSizes {
		size := size
		add(fmt.Sprintf("XORKernel/size=%d", size), func(b *testing.B) { benchXORKernel(b, size) })
	}
	for _, codeName := range fbf.CodeNames() {
		codeName := codeName
		add("SchemeGen/code="+codeName, func(b *testing.B) { benchSchemeGen(b, codeName) })
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Name < records[j].Name })

	doc := struct {
		Unit       string        `json:"ns_unit"`
		Benchmarks []benchRecord `json:"benchmarks"`
	}{Unit: "wall-clock nanoseconds per operation", Benchmarks: records}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchJSONOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark records to %s", len(records), *benchJSONOut)
}
