package fbf_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbf"
)

// TestPublicAPIPipeline exercises the whole facade the way the README's
// quickstart does: code → trace → simulation → figures.
func TestPublicAPIPipeline(t *testing.T) {
	code, err := fbf.NewCode("tip", 7)
	if err != nil {
		t.Fatal(err)
	}
	if code.Disks() != 8 || code.Rows() != 6 {
		t.Fatalf("unexpected geometry %dx%d", code.Rows(), code.Disks())
	}

	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{Groups: 16, Stripes: 256, Seed: 3, Disk: -1})
	if err != nil {
		t.Fatal(err)
	}

	res, err := fbf.Run(fbf.SimConfig{
		Code: code, Policy: "fbf", Strategy: fbf.StrategyLooped,
		Workers: 4, CacheChunks: 32, Stripes: 256,
	}, errors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.TotalRequests == 0 {
		t.Fatalf("empty result %+v", res)
	}

	params := fbf.DefaultExperimentParams()
	params.Codes = []string{"tip"}
	params.Primes = []int{5}
	params.Policies = []string{"lru", "fbf"}
	params.CacheSizesMB = []int{1, 64}
	params.Groups = 8
	params.Stripes = 128
	params.Workers = 4
	fig, err := fbf.Fig8(params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fbf.RenderFigure(&buf, fig, params.Policies); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIG8") {
		t.Error("figure rendering broken through facade")
	}
}

func TestPublicAPICodesAndPolicies(t *testing.T) {
	if len(fbf.CodeNames()) != 4 {
		t.Errorf("CodeNames = %v", fbf.CodeNames())
	}
	names := fbf.PolicyNames()
	hasFBF := false
	for _, n := range names {
		if n == "fbf" {
			hasFBF = true
		}
	}
	if !hasFBF {
		t.Errorf("fbf missing from PolicyNames %v", names)
	}
	for _, ctor := range []func(int) (*fbf.Code, error){fbf.NewSTAR, fbf.NewTripleStar, fbf.NewTIP, fbf.NewHDD1} {
		code, err := ctor(5)
		if err != nil {
			t.Fatal(err)
		}
		stripe := code.NewStripe(64)
		code.Encode(stripe)
		if !code.Verify(stripe) {
			t.Errorf("%v: zero stripe should verify", code)
		}
	}
	p := fbf.NewFBF(4)
	p.SetPriorities(map[fbf.ChunkID]int{{Stripe: 0, Cell: fbf.Coord{Row: 0, Col: 0}}: 3})
	if p.Request(fbf.ChunkID{Stripe: 0, Cell: fbf.Coord{Row: 0, Col: 0}}) {
		t.Error("cold request hit")
	}
	if p.QueueLen(3) != 1 {
		t.Error("priority routing broken through facade")
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	code := fbf.MustNewCode("star", 5)
	errors, err := fbf.GenerateTrace(code, fbf.TraceConfig{Groups: 5, Stripes: 50, Seed: 1, Disk: 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fbf.WriteTraceCSV(&buf, errors); err != nil {
		t.Fatal(err)
	}
	back, err := fbf.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(errors) {
		t.Fatal("round trip lost errors")
	}
}

// TestPublicAPIStorageEngine exercises the storage-engine facade the
// way the README's fbfctl quick-start does: init → kill a disk →
// rebuild → verify, all through re-exported names.
func TestPublicAPIStorageEngine(t *testing.T) {
	m := fbf.StoreManifest{Code: "star", P: 5, Disks: 8, Rows: 4, Stripes: 2, ChunkSize: 64}
	b := fbf.NewMemStore()
	if err := fbf.InitStore(b, m, 7); err != nil {
		t.Fatal(err)
	}
	addrs, err := b.List(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != m.Rows*m.Stripes {
		t.Fatalf("disk 3 holds %d chunks, want %d", len(addrs), m.Rows*m.Stripes)
	}
	for _, a := range addrs {
		if err := b.Delete(a); err != nil {
			t.Fatal(err)
		}
	}
	res, err := fbf.Rebuild(fbf.RebuildConfig{Backend: b, Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataLoss || res.ChunksRebuilt != m.Rows*m.Stripes || res.ChunksVerified != res.ChunksRebuilt {
		t.Fatalf("rebuild through facade: %+v", res)
	}
	rep, err := fbf.ScanStore(b, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after facade rebuild: %+v", rep)
	}
}

// TestPublicAPICrashSafety exercises the crash-safety facade: a
// journaled rebuild crashed by an injected fault plan resumes to a
// clean store, and the watch daemon drives the same repair end to end.
func TestPublicAPICrashSafety(t *testing.T) {
	m := fbf.StoreManifest{Code: "star", P: 5, Disks: 8, Rows: 4, Stripes: 2, ChunkSize: 64}
	root := t.TempDir()
	d, err := fbf.OpenDirStoreWith(filepath.Join(root, "array"), fbf.DirStoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := fbf.InitStore(d, m, 7); err != nil {
		t.Fatal(err)
	}
	addrs, err := d.List(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if err := d.Delete(a); err != nil {
			t.Fatal(err)
		}
	}

	journal := filepath.Join(root, "rebuild.journal")
	faulty := fbf.WrapFaultStore(d, fbf.FaultStorePlan{Seed: 1, CrashAfterOps: 40})
	_, err = fbf.Rebuild(fbf.RebuildConfig{Backend: faulty, Manifest: m, JournalPath: journal})
	if !errors.Is(err, fbf.ErrFaultCrashed) {
		t.Fatalf("crashed rebuild returned %v, want ErrFaultCrashed", err)
	}

	throttled, err := fbf.NewStoreThrottle(d, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := fbf.RunDaemon(fbf.DaemonConfig{
		Service:  fbf.RebuildConfig{Backend: throttled, Manifest: m, JournalPath: journal},
		MaxScans: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.DataLoss || dres.Interrupted || dres.Scans != 1 || dres.Last == nil {
		t.Fatalf("daemon through facade: %+v", dres)
	}
	rep, err := fbf.ScanStore(d, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after facade resume: %+v", rep)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Fatalf("journal survives completed resume: %v", err)
	}
}

// TestPublicAPIServing exercises the serving surface through the
// facade: workload generator, a QoS-throttled serving run, and the
// frontier sweep.
func TestPublicAPIServing(t *testing.T) {
	gen, err := fbf.NewWorkload(fbf.WorkloadConfig{
		Ops: 10, Rate: 100, Stripes: 8,
		Cells: []fbf.Coord{{Row: 0, Col: 0}}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	op, ok := gen.Next()
	if !ok || op.At != fbf.WorkloadArrivalAt(0, 100) {
		t.Fatalf("generator broken through facade: %+v ok=%v", op, ok)
	}
	if pmf := fbf.WorkloadZipfPMF(1.5, 4); len(pmf) != 4 {
		t.Fatalf("ZipfPMF broken through facade: %v", pmf)
	}
	if next := fbf.AIMDNext(100, true, fbf.QoSConfig{SLOp99Ms: 50}); next != 50 {
		t.Fatalf("AIMDNext broken through facade: %v", next)
	}

	code := fbf.MustNewCode("tip", 7)
	errs, err := fbf.GenerateTrace(code, fbf.TraceConfig{Groups: 8, Stripes: 128, Seed: 2, Disk: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fbf.Run(fbf.SimConfig{
		Code: code, Policy: "lru", Strategy: fbf.StrategyLooped,
		Workers: 4, CacheChunks: 32, Stripes: 128,
		Serving: &fbf.ServingConfig{
			Ops: 200, Rate: 500, ZipfS: 1.2, WriteFrac: 0.1, HotFrac: 0.3, Seed: 5,
			QoS: &fbf.QoSConfig{SLOp99Ms: 50},
		},
	}, errs)
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Serving
	if sr == nil || sr.Ops() == 0 || sr.Hist.Total() != sr.Ops() {
		t.Fatalf("serving result broken through facade: %+v", sr)
	}
	if sr.Classes[fbf.ClassHealthy].Ops+sr.Classes[fbf.ClassDegraded].Ops+sr.Classes[fbf.ClassLost].Ops != sr.Ops() {
		t.Fatal("class split broken through facade")
	}

	params := fbf.DefaultExperimentParams()
	params.Codes = []string{"tip"}
	params.Primes = []int{5}
	params.Policies = []string{"lru"}
	params.CacheSizesMB = []int{1}
	params.Groups = 8
	params.Stripes = 128
	params.Workers = 4
	rows, err := fbf.ServingSweep(params, fbf.ServingSweepConfig{Rates: []float64{200}, Ops: 100})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fbf.RenderServing(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SERVING") {
		t.Error("serving rendering broken through facade")
	}
}
