// Package fbf is a simulation library reproducing "Favorable Block
// First: A Comprehensive Cache Scheme to Accelerate Partial Stripe
// Recovery of Triple Disk Failure Tolerant Arrays" (Li, Ji, Wu, Li,
// Guo — ICPP 2017).
//
// The library has four layers, all re-exported here as the public API:
//
//   - Erasure codes (STAR, Triple-Star, TIP, HDD1): stripe layouts with
//     horizontal/diagonal/anti-diagonal parity chains, generic GF(2)
//     encode/decode, and exhaustively verified triple-fault tolerance —
//     plus an Azure-style LRC over GF(256) (the paper's footnote 3).
//   - Recovery schemes: given a partial stripe error (a contiguous run
//     of bad chunks on one disk), select a parity chain per lost chunk —
//     either the conventional horizontal-only scheme or the paper's
//     direction-looping scheme that maximizes chunk sharing — and derive
//     the FBF priority dictionary from chain-sharing counts.
//   - Buffer caches: FIFO, LRU, LFU, ARC, LRU-2, 2Q, LRFU, Belady's
//     OPT, and the paper's FBF three-queue priority policy.
//   - Simulation: a deterministic discrete-event disk-array model and
//     reconstruction engines (SOR with partitioned caches, DOR with one
//     shared cache) measuring hit ratio, disk reads, response time and
//     reconstruction time — with online recovery under foreground load,
//     staggered error detection and byte-level verification — plus an
//     experiment harness regenerating the paper's Figures 8–11 and
//     Tables IV–V.
//
// A fifth layer runs the same machinery against real bytes: a pluggable
// chunk store (directory-per-disk, in-memory, object-style) and a
// rebuild service that repairs killed disks on a filesystem,
// oracle-checking every recovered chunk (§12 in DESIGN.md; cmd/fbfctl
// is the operator front end). Rebuilds are crash-safe: a write-ahead
// journal makes an interrupted repair resumable, a fault-injecting
// backend wrapper proves it at every crash point, and a watch daemon
// keeps an array repaired unattended (§13 in DESIGN.md).
//
// Quick start:
//
//	code, _ := fbf.NewCode("tip", 7)
//	errs, _ := fbf.GenerateTrace(code, fbf.TraceConfig{Groups: 100, Stripes: 4096, Seed: 1, Disk: -1})
//	res, _ := fbf.Run(fbf.SimConfig{Code: code, Policy: "fbf", Strategy: fbf.StrategyLooped,
//		Workers: 128, CacheChunks: 2048, Stripes: 4096}, errs)
//	fmt.Printf("hit ratio %.3f, %d disk reads, %v reconstruction\n",
//		res.HitRatio(), res.DiskReads, res.Makespan)
package fbf

import (
	"fbf/internal/cache"
	"fbf/internal/codes"
	"fbf/internal/core"
	"fbf/internal/disk"
	"fbf/internal/experiments"
	"fbf/internal/grid"
	"fbf/internal/lrc"
	"fbf/internal/obs"
	"fbf/internal/rebuild"
	"fbf/internal/sim"
	"fbf/internal/store"
	"fbf/internal/store/faultstore"
	"fbf/internal/telemetry"
	"fbf/internal/trace"
	"fbf/internal/verify"
	"fbf/internal/workload"
)

// Geometry types.
type (
	// Coord identifies a chunk within a stripe: C(row, col).
	Coord = grid.Coord
	// Chain is one parity chain (cells whose XOR is zero).
	Chain = grid.Chain
	// ChainID identifies a chain by direction and index.
	ChainID = grid.ChainID
	// ChainKind is a chain direction.
	ChainKind = grid.ChainKind
	// Layout is a code's stripe geometry.
	Layout = grid.Layout
)

// Chain directions.
const (
	Horizontal   = grid.Horizontal
	Diagonal     = grid.Diagonal
	AntiDiagonal = grid.AntiDiagonal
)

// Erasure codes.
type (
	// Code is an erasure-code instance (family bound to a prime p).
	Code = codes.Code
	// Stripe holds one stripe's chunk contents.
	Stripe = codes.Stripe
	// LRC is the Azure-style Local Reconstruction Code over GF(256),
	// the Reed-Solomon-based counterpart of the paper's footnote 3.
	LRC = lrc.Code
	// Geometry is the code view consumed by scheme generation and the
	// simulation engine; both Code and LRC implement it.
	Geometry = core.Geometry
)

// Code constructors and registry.
var (
	// NewCode constructs a code by family name ("star", "triplestar",
	// "tip", "hdd1").
	NewCode = codes.New
	// MustNewCode is NewCode that panics on error.
	MustNewCode = codes.MustNew
	// CodeNames lists the registered code families.
	CodeNames = codes.Names
	// NewSTAR constructs the STAR code (p+3 disks).
	NewSTAR = codes.NewSTAR
	// NewTripleStar constructs the Triple-Star stand-in (p+2 disks).
	NewTripleStar = codes.NewTripleStar
	// NewTIP constructs the TIP-code stand-in (p+1 disks).
	NewTIP = codes.NewTIP
	// NewHDD1 constructs the HDD1 stand-in (p+1 disks).
	NewHDD1 = codes.NewHDD1
	// NewLRC constructs LRC(k, l, g) with the given stripe height.
	NewLRC = lrc.New
	// ResolveGeometry maps an experiment code name ("star", ..., "lrc")
	// to a geometry.
	ResolveGeometry = experiments.ResolveGeometry
)

// Caching.
type (
	// CachePolicy is a chunk-cache replacement policy.
	CachePolicy = cache.Policy
	// ChunkID identifies a chunk on the array (stripe + cell).
	ChunkID = cache.ChunkID
	// CacheStats counts cache events.
	CacheStats = cache.Stats
	// FBFCache is the paper's three-queue priority policy.
	FBFCache = core.FBF
	// CacheInvalidator is implemented by every registered policy: it
	// removes a chunk outright (fault escalation, not eviction).
	CacheInvalidator = cache.Invalidator
)

// Cache constructors and registry.
var (
	// NewPolicy constructs a registered policy ("fbf", "fifo", "lru",
	// "lfu", "arc", "lru2", "2q", "opt") with a capacity in chunks.
	NewPolicy = cache.New
	// MustNewPolicy is NewPolicy that panics on error.
	MustNewPolicy = cache.MustNew
	// PolicyNames lists the registered policies.
	PolicyNames = cache.Names
	// NewFBF constructs the FBF policy directly.
	NewFBF = core.NewFBF
)

// Recovery schemes.
type (
	// PartialStripeError is a contiguous run of bad chunks on one disk.
	PartialStripeError = core.PartialStripeError
	// Scheme is a complete recovery plan for one partial stripe error.
	Scheme = core.Scheme
	// SelectedChain records the repair chain chosen for one lost chunk.
	SelectedChain = core.SelectedChain
	// Strategy selects the chain-selection heuristic.
	Strategy = core.Strategy
)

// Chain-selection strategies.
const (
	// StrategyTypical is conventional horizontal-only recovery.
	StrategyTypical = core.StrategyTypical
	// StrategyLooped is the paper's direction-looping FBF scheme.
	StrategyLooped = core.StrategyLooped
	// StrategyGreedy is the marginal-I/O-minimizing ablation.
	StrategyGreedy = core.StrategyGreedy
)

// Scheme functions.
var (
	// GenerateScheme builds the recovery scheme for one error.
	GenerateScheme = core.GenerateScheme
	// RegenerateScheme re-plans a repair mid-rebuild after escalations
	// or additional disk failures changed the erasure pattern, falling
	// back to the GF(2) decoder for cells no single chain can rebuild.
	RegenerateScheme = core.RegenerateScheme
	// ParseStrategy converts a strategy name.
	ParseStrategy = core.ParseStrategy
)

// Planner is the geometry capability RegenerateScheme uses for its
// decoder fallback; the XOR code families implement it.
type Planner = core.Planner

// Workload generation.
type (
	// TraceConfig parameterizes synthetic error-trace generation.
	TraceConfig = trace.Config
	// SizeDist selects the error-size distribution.
	SizeDist = trace.SizeDist
	// WorkloadConfig parameterizes the deterministic open-loop
	// Zipf/YCSB-style foreground generator serving runs replay.
	WorkloadConfig = workload.Config
	// WorkloadGenerator streams foreground operations; the same config
	// yields a byte-identical stream on any host.
	WorkloadGenerator = workload.Generator
	// WorkloadOp is one generated foreground operation.
	WorkloadOp = workload.Op
)

// Error-size distributions.
const (
	SizeUniform   = trace.SizeUniform
	SizeFixed     = trace.SizeFixed
	SizeGeometric = trace.SizeGeometric
)

// Trace functions.
var (
	// GenerateTrace produces partial stripe error groups.
	GenerateTrace = trace.Generate
	// WriteTraceCSV serializes a trace.
	WriteTraceCSV = trace.WriteCSV
	// ReadTraceCSV parses a serialized trace.
	ReadTraceCSV = trace.ReadCSV
	// NewWorkload builds a foreground workload generator.
	NewWorkload = workload.New
	// WorkloadArrivalAt is the pure open-loop arrival-time spec
	// (generator timestamps are exactly this arithmetic).
	WorkloadArrivalAt = workload.ArrivalAt
	// WorkloadZipfPMF is the analytic Zipf probability mass function the
	// generator's stripe draws are chi-square-tested against.
	WorkloadZipfPMF = workload.ZipfPMF
)

// Simulation.
type (
	// SimConfig parameterizes one reconstruction run.
	SimConfig = rebuild.Config
	// SimResult aggregates one run's metrics.
	SimResult = rebuild.Result
	// AppWorkload parameterizes a foreground read stream for online
	// recovery.
	AppWorkload = rebuild.AppWorkload
	// ServingConfig parameterizes the heavy-traffic foreground stream of
	// a serving run (SimConfig.Serving): open-loop Zipf read/write mix
	// with per-stripe-class latency percentiles and an optional QoS
	// rebuild throttle.
	ServingConfig = rebuild.ServingConfig
	// ServingResult aggregates the foreground stream's metrics
	// (SimResult.Serving).
	ServingResult = rebuild.ServingResult
	// ServingClassStats aggregates one stripe class's served requests.
	ServingClassStats = rebuild.ServingClassStats
	// StripeClass labels a foreground request by the repair state of its
	// target stripe at arrival.
	StripeClass = rebuild.StripeClass
	// QoSConfig parameterizes the adaptive AIMD rebuild throttle of a
	// serving run.
	QoSConfig = rebuild.QoSConfig
	// AIMDStep records one judged QoS decision window.
	AIMDStep = rebuild.AIMDStep
	// Mode selects SOR or DOR parallelization.
	Mode = rebuild.Mode
	// DiskScheduler selects a disk queue discipline.
	DiskScheduler = disk.Scheduler
	// DiskModel is a disk service-time model.
	DiskModel = disk.Model
	// SimTime is simulated time in nanoseconds (SimConfig's timing
	// fields and SimResult's latencies use it).
	SimTime = sim.Time
	// FixedLatency is the paper's constant-latency disk model.
	FixedLatency = disk.FixedLatency
	// Positional is the seek/rotation/transfer disk model.
	Positional = disk.Positional
	// FaultConfig arms deterministic fault injection on a run
	// (SimConfig.Faults): seeded URE/transient rates plus scheduled
	// whole-disk failures.
	FaultConfig = rebuild.FaultConfig
	// DiskFailure schedules one whole-disk failure mid-rebuild.
	DiskFailure = rebuild.DiskFailure
	// SimConfigError is the typed validation error for bad SimConfig
	// fault fields.
	SimConfigError = rebuild.ConfigError
	// FaultKind classifies an injected disk fault.
	FaultKind = disk.FaultKind
	// FaultPlan decides per-request fault outcomes for one disk.
	FaultPlan = disk.FaultPlan
	// SeededFaultPlan is the deterministic hash-seeded FaultPlan.
	SeededFaultPlan = disk.SeededFaultPlan
)

// Fault kinds.
const (
	FaultNone      = disk.FaultNone
	FaultTransient = disk.FaultTransient
	FaultURE       = disk.FaultURE
	FaultDiskFail  = disk.FaultDiskFail
)

// Engine modes and disk schedulers.
const (
	ModeSOR   = rebuild.ModeSOR
	ModeDOR   = rebuild.ModeDOR
	SchedFIFO = disk.SchedFIFO
	SchedSSTF = disk.SchedSSTF
	SchedLOOK = disk.SchedLOOK
)

// Stripe classes of serving-mode foreground requests.
const (
	ClassHealthy  = rebuild.ClassHealthy
	ClassDegraded = rebuild.ClassDegraded
	ClassLost     = rebuild.ClassLost
)

// Simulated-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Simulation functions.
var (
	// Run executes a reconstruction and returns the metrics.
	Run = rebuild.Run
	// AIMDNext is the pure reference spec of one QoS controller decision;
	// serving runs' recorded traces are model-checked against it.
	AIMDNext = rebuild.AIMDNext
	// PaperFixedLatency is the paper's 10 ms disk model.
	PaperFixedLatency = disk.PaperFixedLatency
	// NewPositional builds a positional disk model.
	NewPositional = disk.NewPositional
	// NewSeededFaultPlan builds a deterministic per-disk fault plan.
	NewSeededFaultPlan = disk.NewSeededFaultPlan
)

// Experiments.
type (
	// ExperimentParams configures a figure/table sweep.
	ExperimentParams = experiments.Params
	// ExperimentPoint is one sweep measurement.
	ExperimentPoint = experiments.Point
	// Figure is a reproduced paper figure.
	Figure = experiments.Figure
	// DurabilityConfig parameterizes the fault-injection durability
	// sweep.
	DurabilityConfig = experiments.DurabilityConfig
	// DurabilityRow is one durability sweep cell.
	DurabilityRow = experiments.DurabilityRow
	// ServingSweepConfig configures the heavy-traffic serving experiment.
	ServingSweepConfig = experiments.ServingSweep
	// ServingRow is one latency/throughput frontier point.
	ServingRow = experiments.ServingRow
)

// Experiment functions (one per paper artefact, plus renderers).
var (
	// DefaultExperimentParams is the paper's configuration.
	DefaultExperimentParams = experiments.DefaultParams
	// Sweep runs the full sweep cross product.
	Sweep = experiments.Sweep
	// Fig8 reproduces Figure 8 (hit ratio).
	Fig8 = experiments.Fig8
	// Fig9 reproduces Figure 9 (disk reads).
	Fig9 = experiments.Fig9
	// Fig10 reproduces Figure 10 (response time).
	Fig10 = experiments.Fig10
	// Fig11 reproduces Figure 11 (reconstruction time).
	Fig11 = experiments.Fig11
	// Table4 reproduces Table IV (FBF overhead).
	Table4 = experiments.Table4
	// Table5 reproduces Table V (maximum improvements).
	Table5 = experiments.Table5
	// SchemeAblation quantifies chain-selection savings.
	SchemeAblation = experiments.SchemeAblation
	// OnlineRecovery runs the foreground-load experiment.
	OnlineRecovery = experiments.OnlineRecovery
	// RenderOnline prints the online-recovery table.
	RenderOnline = experiments.RenderOnline
	// ModeComparison runs the SOR-vs-DOR ablation.
	ModeComparison = experiments.ModeComparison
	// RenderModes prints the SOR-vs-DOR table.
	RenderModes = experiments.RenderModes
	// Durability sweeps data-loss probability and repair makespan under
	// injected faults.
	Durability = experiments.Durability
	// RenderDurability prints the durability sweep table.
	RenderDurability = experiments.RenderDurability
	// RenderFigure prints a figure as aligned text tables.
	RenderFigure = experiments.RenderFigure
	// RenderFigureCSV prints a figure as CSV.
	RenderFigureCSV = experiments.RenderFigureCSV
	// RenderTable4 prints Table IV.
	RenderTable4 = experiments.RenderTable4
	// RenderTable5 prints Table V.
	RenderTable5 = experiments.RenderTable5
	// RenderSchemeAblation prints the scheme ablation table.
	RenderSchemeAblation = experiments.RenderSchemeAblation
	// ServingSweep runs the serving experiment: latency/throughput
	// frontiers per cache policy under rebuild, optionally QoS-throttled.
	ServingSweep = experiments.Serving
	// RenderServing prints the serving frontier table.
	RenderServing = experiments.RenderServing
	// RenderServingCSV prints the serving frontier as CSV.
	RenderServingCSV = experiments.RenderServingCSV
)

// Observability (deterministic tracing and metrics; see "Observability"
// in DESIGN.md). Attach a TraceCollector or MetricsRegistry to
// SimConfig.Tracer / SimConfig.Metrics, or to a sweep point through
// ExperimentParams.Observe; events are stamped in simulated time, so a
// run's trace is bit-identical across hosts and sweep parallelism.
type (
	// Tracer receives the simulation event stream.
	Tracer = obs.Tracer
	// TraceEvent is one traced span, instant or counter sample.
	TraceEvent = obs.Event
	// TraceCollector is the in-memory Tracer.
	TraceCollector = obs.Collector
	// MetricsRegistry samples counters/gauges/histograms on a simulated
	// -time tick.
	MetricsRegistry = obs.Registry
	// TraceSummary is the per-phase breakdown computed from a trace.
	TraceSummary = obs.Summary
	// RunObs carries the observability sinks for one sweep point
	// (ExperimentParams.Observe).
	RunObs = experiments.RunObs
)

// Observability functions.
var (
	// NewTraceCollector builds an in-memory event sink.
	NewTraceCollector = obs.NewCollector
	// ValidateTrace checks an event stream's schema invariants.
	ValidateTrace = obs.Validate
	// WriteChromeTrace exports a trace as Chrome trace-event JSON
	// (chrome://tracing, Perfetto).
	WriteChromeTrace = obs.WriteChrome
	// WriteTraceJSONL exports a trace as one JSON event per line.
	WriteTraceJSONL = obs.WriteJSONL
	// ReadTraceJSONL parses a JSONL trace.
	ReadTraceJSONL = obs.ReadJSONL
	// SummarizeTrace computes the per-phase breakdown of a trace.
	SummarizeTrace = obs.Summarize
	// RenderTraceSummary prints a trace summary as text.
	RenderTraceSummary = obs.RenderSummary
	// NewMetricsRegistry builds an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
)

// Verification (byte-level conformance; see "Correctness" in DESIGN.md).
type (
	// VerifyStripeConfig parameterizes a recovery conformance sweep.
	VerifyStripeConfig = verify.StripeConfig
	// VerifyStripeReport summarizes one conformance sweep.
	VerifyStripeReport = verify.StripeReport
	// VerifyCacheConfig parameterizes a cache-policy model check.
	VerifyCacheConfig = verify.CacheConfig
	// VerifyCacheReport summarizes one cache-policy model check.
	VerifyCacheReport = verify.CacheReport
	// VerifyEscalationReport summarizes one escalated-pattern sweep.
	VerifyEscalationReport = verify.EscalationReport
)

// Verification functions.
var (
	// VerifyRecovery sweeps every single-disk partial-stripe error
	// pattern, recovering real bytes through the generated schemes and
	// cross-checking against the GF(2) decoder oracle.
	VerifyRecovery = verify.SweepStripes
	// VerifyCachePolicy model-checks a registered cache policy against
	// its executable reference specification.
	VerifyCachePolicy = verify.CheckCache
	// VerifiedPolicies lists the policies the model checker covers.
	VerifiedPolicies = verify.CheckedPolicies
	// VerifyEscalatedRecovery sweeps the regenerated-scheme scenarios of
	// the fault-injection engine (URE escalations, cascading column
	// failures, beyond-tolerance loss verdicts) against the gf2 oracle.
	VerifyEscalatedRecovery = verify.SweepEscalations
)

// Storage engine (real bytes behind the simulator; see §12 in DESIGN.md).
type (
	// StoreBackend is the pluggable chunk-store contract the rebuild
	// service runs against.
	StoreBackend = store.Backend
	// StoreAddr addresses one chunk as (disk, stripe, chunk).
	StoreAddr = store.Addr
	// StoreManifest describes an on-disk array: code, prime, geometry,
	// chunk size.
	StoreManifest = store.ArrayManifest
	// DirStore is the directory-per-disk, file-per-chunk backend.
	DirStore = store.Dir
	// MemStore is the in-memory backend (tests, experiments).
	MemStore = store.Mem
	// RebuildConfig parameterizes one storage-engine rebuild.
	RebuildConfig = rebuild.ServiceConfig
	// RebuildResult aggregates one storage-engine rebuild.
	RebuildResult = rebuild.ServiceResult
	// RebuildProgress reports per-stripe completion during a rebuild.
	RebuildProgress = rebuild.Progress
	// StoreDamageReport is the outcome of a store scan.
	StoreDamageReport = rebuild.DamageReport
	// RecoveryOracle is the GF(2) decoder cross-check applied to every
	// recovered chunk before it is written back.
	RecoveryOracle = verify.Oracle
)

// Storage engine functions.
var (
	// OpenDirStore opens (creating if needed) a directory-backed store.
	OpenDirStore = store.OpenDir
	// NewMemStore builds an empty in-memory store.
	NewMemStore = store.NewMem
	// InitStore materializes a full deterministic array into a backend.
	InitStore = rebuild.InitStore
	// ScanStore assesses a store's damage against its manifest.
	ScanStore = rebuild.ScanStore
	// Rebuild scans and repairs a store through the scheme/cache/
	// escalation machinery, oracle-checking every recovered chunk.
	Rebuild = rebuild.RunService
	// NewRecoveryOracle builds the decoder plan for one lost-cell set.
	NewRecoveryOracle = verify.NewOracle
)

// Crash safety (journaled resumable rebuilds, fault injection, and the
// watch daemon; see "Crash consistency & the rebuild journal" in
// DESIGN.md). Set RebuildConfig.JournalPath to make a rebuild journal
// its progress and resume after a crash; wrap the backend in a
// FaultStore to prove it.
type (
	// DirStoreOptions tunes the directory backend's durability
	// (OpenDirStoreWith).
	DirStoreOptions = store.DirOptions
	// StoreThrottle is the token-bucket bandwidth limiter backend
	// wrapper.
	StoreThrottle = store.Throttle
	// FaultStore wraps a backend with deterministic seeded fault
	// injection: EIO, ENOSPC, torn writes, stalls, and crash points.
	FaultStore = faultstore.Store
	// FaultStorePlan parameterizes a FaultStore's injected faults.
	FaultStorePlan = faultstore.Plan
	// Journal is the append-only CRC-framed write-ahead rebuild journal.
	Journal = rebuild.Journal
	// JournalState is the state replayed from a journal on open.
	JournalState = rebuild.JournalState
	// JournalScan is a journaled damage-scan summary (the geometry
	// guard resume checks against the manifest).
	JournalScan = rebuild.JournalScan
	// DaemonConfig parameterizes the rebuild watch loop.
	DaemonConfig = rebuild.DaemonConfig
	// DaemonResult aggregates one watch loop's lifetime.
	DaemonResult = rebuild.DaemonResult
)

// Injected-fault sentinels and journal errors, matchable with errors.Is.
var (
	// ErrFaultInjectedIO is FaultStore's injected EIO.
	ErrFaultInjectedIO = faultstore.ErrInjectedIO
	// ErrFaultNoSpace is FaultStore's injected ENOSPC.
	ErrFaultNoSpace = faultstore.ErrNoSpace
	// ErrFaultCrashed reports a FaultStore crash point was reached and
	// all further I/O is halted.
	ErrFaultCrashed = faultstore.ErrCrashed
	// ErrJournalVersion reports a journal written by a newer format
	// version.
	ErrJournalVersion = rebuild.ErrJournalVersion
)

// Daemon defaults.
const (
	DaemonDefaultInterval   = rebuild.DefaultInterval
	DaemonDefaultRetries    = rebuild.DefaultRetries
	DaemonDefaultBackoff    = rebuild.DefaultBackoff
	DaemonDefaultMaxBackoff = rebuild.DefaultMaxBackoff
)

// Crash-safety functions.
var (
	// OpenDirStoreWith opens a directory-backed store with explicit
	// durability options.
	OpenDirStoreWith = store.OpenDirWith
	// NewStoreThrottle wraps a backend with a bytes-per-second budget.
	NewStoreThrottle = store.NewThrottle
	// WrapFaultStore puts a fault plan in front of a backend.
	WrapFaultStore = faultstore.Wrap
	// OpenJournal opens (creating if needed) a rebuild journal and
	// replays its longest valid record prefix, truncating any torn tail.
	OpenJournal = rebuild.OpenJournal
	// JournalPayloadCRC is the chunk-payload checksum commit records
	// carry.
	JournalPayloadCRC = rebuild.PayloadCRC
	// RunDaemon watches a store, running journaled rebuilds whenever
	// damage appears, until Stop fires or MaxScans is reached.
	RunDaemon = rebuild.RunDaemon
)

// Operational telemetry (wall-clock metrics for live rebuilds; see
// "Operational telemetry" in DESIGN.md). Instrument a backend, register
// producers on a MetricsRegistry, and serve /metrics, /healthz and
// /progress with a MetricsServer — `fbfctl daemon -listen` wires all of
// it together.
type (
	// TelemetryRegistry is the deterministic counter/gauge/histogram
	// registry with Prometheus text and JSON exposition (wall-clock
	// operational twin of the simulated-time MetricsRegistry).
	TelemetryRegistry = telemetry.Registry
	// TelemetryLabel is one name="value" pair on a registered series.
	TelemetryLabel = telemetry.Label
	// TelemetryServer serves a registry over HTTP with health and
	// progress endpoints.
	TelemetryServer = telemetry.Server
	// RebuildProgressTracker is the live phase/progress snapshot source
	// behind /progress.
	RebuildProgressTracker = telemetry.ProgressTracker
	// RebuildMetrics are the rebuild service's producer cells
	// (RebuildConfig.Metrics).
	RebuildMetrics = telemetry.RebuildMetrics
	// DaemonMetrics are the watch daemon's producer cells
	// (DaemonConfig.Metrics).
	DaemonMetrics = telemetry.DaemonMetrics
	// QoSMetrics are the serving-QoS throttle's producer cells,
	// exported in simulated seconds.
	QoSMetrics = telemetry.QoSMetrics
	// InstrumentedStore counts ops/bytes/errors and times every backend
	// call it forwards.
	InstrumentedStore = store.Instrumented
	// StoreOp names one backend operation class (read, write, ...).
	StoreOp = store.Op
	// StoreOpStats is one operation class's cumulative counters.
	StoreOpStats = store.OpStats
	// StoreThrottleStats is a Throttle's cumulative wait accounting.
	StoreThrottleStats = store.ThrottleStats
)

// Telemetry functions.
var (
	// NewTelemetryRegistry builds an empty operational-metrics registry.
	NewTelemetryRegistry = telemetry.NewRegistry
	// NewTelemetryServer pairs a registry with an optional progress
	// callback; Start it on an address to serve.
	NewTelemetryServer = telemetry.NewServer
	// InstrumentStore wraps a backend with per-op counters and latency
	// histograms (compose outside a StoreThrottle to include its waits).
	InstrumentStore = store.Instrument
	// RegisterStoreMetrics exposes an instrumented backend's counters as
	// the fbf_store_* families.
	RegisterStoreMetrics = telemetry.RegisterBackend
	// RegisterThrottleMetrics exposes a throttle's rate and waits as the
	// fbf_throttle_* families.
	RegisterThrottleMetrics = telemetry.RegisterThrottle
	// NewRebuildMetrics registers the fbf_rebuild_* families and returns
	// the cells RunService feeds.
	NewRebuildMetrics = telemetry.NewRebuildMetrics
	// NewDaemonMetrics registers the fbf_daemon_* families and returns
	// the cells RunDaemon feeds.
	NewDaemonMetrics = telemetry.NewDaemonMetrics
	// NewQoSMetrics registers the fbf_qos_* families and returns the
	// cells the serving QoS controller feeds.
	NewQoSMetrics = telemetry.NewQoSMetrics
)
