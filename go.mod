module fbf

go 1.24
